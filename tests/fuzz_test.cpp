// Tests for the differential fuzzer subsystem (src/fuzz/): generator
// contract and determinism, oracle cleanliness and determinism, the
// shrinker, and the checked-in regression corpus.
//
// Every tests/fuzz_corpus/*.tir file is a shrunk repro of a bug the
// fuzzer found; running the full oracle stack over the corpus keeps
// those bugs fixed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/shrink.h"
#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace trident::fuzz {
namespace {

// Small oracle budget: corpus modules are tiny, and the unit suite
// should stay fast. The CLI smoke in tools/ci.sh runs the full budget.
OracleOptions quick_options() {
  OracleOptions opt;
  opt.fi_trials = 60;
  opt.demanded_probes = 12;
  return opt;
}

std::string describe(const CheckResult& r) {
  std::ostringstream os;
  for (const auto& d : r.divergences) {
    os << "[" << d.oracle << "] " << d.detail << "\n";
  }
  return os.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TRIDENT_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".tir") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, EveryReproPassesAllOracles) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no corpus at " TRIDENT_FUZZ_CORPUS_DIR;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    ir::ParseError error;
    auto m = ir::parse_module(buf.str(), &error);
    ASSERT_TRUE(m.has_value()) << path.filename() << " line " << error.line
                               << ": " << error.message;
    ASSERT_TRUE(ir::verify(*m).empty())
        << path.filename() << ": " << ir::verify_to_string(*m);
    const auto result = check_module(*m, /*seed=*/1, quick_options());
    EXPECT_TRUE(result.ok()) << path.filename() << "\n" << describe(result);
  }
}

TEST(FuzzGenerator, SameSeedPrintsIdentically) {
  for (uint64_t seed : {0ull, 7ull, 30ull, 179ull}) {
    const auto a = generate_program(seed);
    const auto b = generate_program(seed);
    EXPECT_EQ(ir::print_module(a), ir::print_module(b)) << "seed " << seed;
  }
}

TEST(FuzzGenerator, ProgramsAreVerifierCleanAndRunToCompletion) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    const auto m = generate_program(seed);
    ASSERT_TRUE(ir::verify(m).empty())
        << "seed " << seed << ": " << ir::verify_to_string(m);
    const auto golden = interp::Interpreter(m).run_main({});
    EXPECT_EQ(golden.outcome, interp::Outcome::Ok) << "seed " << seed;
    EXPECT_FALSE(golden.output.empty()) << "seed " << seed;
  }
}

TEST(FuzzOracles, GeneratedSeedsAreCleanAndDeterministic) {
  for (uint64_t seed : {3ull, 30ull, 179ull}) {
    const auto m = generate_program(seed);
    const auto a = check_module(m, seed, quick_options());
    EXPECT_TRUE(a.ok()) << "seed " << seed << "\n" << describe(a);
    const auto b = check_module(m, seed, quick_options());
    EXPECT_EQ(a.divergences.size(), b.divergences.size());
    EXPECT_EQ(a.golden_dynamic_insts, b.golden_dynamic_insts);
    EXPECT_EQ(a.fi_sdc, b.fi_sdc);
    EXPECT_EQ(a.sdc_full, b.sdc_full);
    EXPECT_EQ(a.sdc_bits, b.sdc_bits);
    EXPECT_EQ(a.sdc_fs, b.sdc_fs);
    EXPECT_EQ(a.known_bits_checked, b.known_bits_checked);
    EXPECT_EQ(a.demanded_probes_run, b.demanded_probes_run);
  }
}

TEST(FuzzShrink, RemovesDeadCodeWhilePreservingThePredicate) {
  ir::Module m;
  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const auto live = b.add(b.i32(3), b.i32(4));
  // Dead chain the predicate does not care about.
  const auto d0 = b.mul(b.i32(5), b.i32(6));
  const auto d1 = b.xor_(d0, b.i32(9));
  b.add(d1, d0);
  b.print_int(live);
  b.ret();
  b.end_function();
  ASSERT_TRUE(ir::verify(m).empty()) << ir::verify_to_string(m);

  const auto original_insts = m.functions[0].insts.size();
  const auto keeps_output = [](const ir::Module& candidate) {
    return interp::Interpreter(candidate).run_main({}).output == "7\n";
  };
  ASSERT_TRUE(keeps_output(m));
  const auto shrunk = shrink_module(m, keeps_output);
  EXPECT_TRUE(ir::verify(shrunk).empty());
  EXPECT_TRUE(keeps_output(shrunk));
  EXPECT_LT(shrunk.functions[0].insts.size(), original_insts);
}

}  // namespace
}  // namespace trident::fuzz
