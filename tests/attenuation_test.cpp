// Tests for the repository's documented extensions over the paper:
// relative-magnitude attenuation tracking (the generalized §IV-E rule),
// in-bounds store-address corruption, and guard damping — plus the
// paper-faithful configuration that disables them.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trident.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::core {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

TEST(Attenuation, SurvivalToBits) {
  EXPECT_DOUBLE_EQ(surv_to_atten_bits(1.0), 0.0);
  EXPECT_DOUBLE_EQ(surv_to_atten_bits(0.25), 2.0);
  EXPECT_DOUBLE_EQ(surv_to_atten_bits(2.0), -1.0);  // amplification
  // Extreme values stay finite.
  EXPECT_TRUE(std::isfinite(surv_to_atten_bits(0.0)));
  EXPECT_TRUE(std::isfinite(surv_to_atten_bits(1e300)));
}

TEST(Attenuation, GeneralizedRuleMatchesPaperAtZero) {
  // The paper's formula is the zero-attenuation special case.
  for (const unsigned width : {32u, 64u}) {
    for (const unsigned prec : {1u, 2u, 4u, 6u}) {
      EXPECT_NEAR(
          TupleModel::fp_format_propagation_attenuated(width, prec, 0.0),
          TupleModel::fp_format_propagation(width, prec), 0.02)
          << width << " prec " << prec;
    }
  }
}

TEST(Attenuation, GeneralizedRuleMonotoneInAttenuation) {
  double prev = 2.0;
  for (const double atten : {0.0, 5.0, 10.0, 20.0, 60.0}) {
    const double f =
        TupleModel::fp_format_propagation_attenuated(64, 8, atten);
    EXPECT_LE(f, prev);
    prev = f;
  }
  // Fully attenuated: only exponent/sign bits survive.
  EXPECT_NEAR(TupleModel::fp_format_propagation_attenuated(64, 8, 1000),
              12.0 / 64, 1e-9);
  // Amplification cannot exceed full visibility.
  EXPECT_LE(TupleModel::fp_format_propagation_attenuated(64, 16, -50), 1.0);
}

TEST(Attenuation, FaddIntoLargeAccumulatorHasPositiveAtten) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  workloads::counted_loop(b, 0, 8, 1, [&](Value) {
    // small (~1.0) + large (~1e6): the small operand attenuates ~20 bits.
    b.fadd(b.f64(1e6), b.fadd(b.f64(1.0), b.f64(0.0)));
  });
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const TupleModel tuples(m, profile);
  uint32_t outer = ~0u;
  int seen = 0;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::FAdd && seen++ == 1) {
      outer = i;
    }
  }
  ASSERT_NE(outer, ~0u);
  EXPECT_NEAR(tuples.tuple({0, outer}, 1).atten, std::log2(1e6), 0.5);
  EXPECT_NEAR(tuples.tuple({0, outer}, 0).atten, 0.0, 0.1);
}

TEST(Attenuation, FsubCancellationAmplifies) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  workloads::counted_loop(b, 0, 8, 1, [&](Value) {
    // 1000.5 - 1000.0: the output is ~2000x smaller than the inputs.
    b.fsub(b.fadd(b.f64(1000.5), b.f64(0.0)), b.f64(1000.0));
  });
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const TupleModel tuples(m, profile);
  uint32_t fsub = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::FSub) fsub = i;
  }
  ASSERT_NE(fsub, ~0u);
  EXPECT_LT(tuples.tuple({0, fsub}, 0).atten, -5.0);  // amplification
}

// A float value scaled way down before being accumulated and printed:
// the attenuation-aware model must predict much lower SDC for it than
// the paper-faithful configuration.
TEST(Attenuation, EndToEndScaledContribution) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value acc = b.alloca_(8, "acc");
  b.store(b.f64(1000.0), acc);
  workloads::counted_loop(b, 0, 32, 1, [&](Value i) {
    const Value x = b.sitofp(i, Type::f64());
    const Value tiny = b.fmul(x, b.f64(1e-9), "tiny");
    b.store(b.fadd(b.load(Type::f64(), acc), tiny), acc);
  });
  b.print_float(b.load(Type::f64(), acc), /*precision=*/6);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);

  ModelConfig with;  // extensions on by default
  ModelConfig without;
  without.trace.track_attenuation = false;
  const Trident attenuated(m, profile, with);
  const Trident paper(m, profile, without);

  // The fmul result feeds the accumulator with a ~1e-12 relative
  // contribution: invisible at 6 significant digits.
  uint32_t fmul = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::FMul) fmul = i;
  }
  ASSERT_NE(fmul, ~0u);
  EXPECT_LT(attenuated.predict({0, fmul}).sdc, 0.35);
  EXPECT_GT(paper.predict({0, fmul}).sdc,
            attenuated.predict({0, fmul}).sdc);
}

TEST(Attenuation, IdentityChainsDoNotAttenuate) {
  // An accumulator's own path (acc = acc + small) keeps the corrupted
  // accumulator fully visible: best-path survival must stay ~1.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value acc = b.alloca_(8, "acc");
  b.store(b.f64(100.0), acc);
  workloads::counted_loop(b, 0, 40, 1, [&](Value) {
    b.store(b.fadd(b.load(Type::f64(), acc), b.f64(0.125)), acc);
  });
  b.print_float(b.load(Type::f64(), acc), /*precision=*/8);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  // Fault in the loaded accumulator value: persists to the output.
  uint32_t load = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    const auto& inst = m.functions[0].insts[i];
    if (inst.op == ir::Opcode::Load && inst.type == Type::f64() &&
        profile.exec({0, i}) == 40) {
      load = i;
    }
  }
  ASSERT_NE(load, ~0u);
  EXPECT_GT(model.predict({0, load}).sdc, 0.5);
}

TEST(Extensions, StoreAddrTrackingToggle) {
  // A wrong-but-in-bounds store address corrupts the array; the
  // paper-faithful mode does not track it.
  Module m;
  const auto g = m.add_global({"arr", 4096, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 512, 1, [&](Value i) {
    const Value idx = b.urem(i, b.i32(1024));
    b.store(i, b.gep(arr, idx, 4));
  });
  const Value chk = b.alloca_(4);
  b.store(b.i32(0), chk);
  workloads::counted_loop(b, 0, 1024, 1, [&](Value i) {
    b.store(b.add(b.load(Type::i32(), chk),
                  b.load(Type::i32(), b.gep(arr, i, 4))),
            chk);
  });
  b.print_int(b.load(Type::i32(), chk));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);

  ModelConfig with;
  ModelConfig without;
  without.trace.track_store_addr = false;
  const Trident tracking(m, profile, with);
  const Trident paper(m, profile, without);
  // Fault in the index feeding the gep: with tracking it can corrupt the
  // array (SDC); without, only the crash fraction registers.
  uint32_t urem = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::URem) urem = i;
  }
  ASSERT_NE(urem, ~0u);
  EXPECT_GT(tracking.predict({0, urem}).sdc, paper.predict({0, urem}).sdc);
}

TEST(Extensions, GuardDampingToggle) {
  // The induction-variable pattern: with guard damping the crash mass is
  // reduced by the branch-flip probability; without it the raw address
  // crash dominates.
  Module m;
  const auto g = m.add_global({"arr", 128 * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 128, 1, [&](Value i) {
    b.store(i, b.gep(arr, i, 4));
  });
  b.print_int(b.load(Type::i32(), b.gep(arr, b.i32(5), 4)));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);

  ModelConfig with;
  ModelConfig without;
  without.trace.guard_damping = false;
  const Trident damped(m, profile, with);
  const Trident undamped(m, profile, without);
  uint32_t phi = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Phi) phi = i;
  }
  ASSERT_NE(phi, ~0u);
  EXPECT_LT(damped.predict({0, phi}).crash,
            undamped.predict({0, phi}).crash);
}

// Property sweep: extensions off (paper-faithful) still yields valid
// probabilities on every workload, and never predicts less than ... the
// ordering is workload-dependent, so only validity is asserted.
class PaperFaithful : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(PaperFaithful, ValidProbabilities) {
  const auto m = GetParam().build();
  const auto profile = prof::collect_profile(m);
  ModelConfig config;
  config.trace.track_attenuation = false;
  config.trace.track_store_addr = false;
  config.trace.guard_damping = false;
  const Trident model(m, profile, config);
  const double overall = model.overall_sdc_exact();
  EXPECT_GE(overall, 0.0);
  EXPECT_LE(overall, 1.0);
  for (const auto& ref : model.injectable_instructions()) {
    const auto pred = model.predict(ref);
    EXPECT_GE(pred.sdc, 0.0);
    EXPECT_LE(pred.sdc + pred.crash, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PaperFaithful,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::core
