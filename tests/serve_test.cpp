// Serve-subsystem tests: the trident-serve/1 wire protocol, the
// cross-run inflight dedup table, the fair cross-session scheduler, and
// an end-to-end daemon/client round trip pinned to the determinism
// contract (daemon-served artifacts byte-identical to offline eval).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "eval/store.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session.h"
#include "support/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace trident::serve {
namespace {

namespace fs = std::filesystem;
namespace json = support::json;

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  return path;
}

// ---- Protocol ----------------------------------------------------------

TEST(Protocol, ParseRequestAcceptsWellFormedLines) {
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"op": "eval", "id": 7, "force": true, "spec": {"name": "x"}})",
      &req, &error))
      << error;
  EXPECT_EQ(req.op, "eval");
  EXPECT_EQ(req.id, 7u);
  EXPECT_TRUE(req.body.get_bool("force", false));
  ASSERT_NE(req.body.find("spec"), nullptr);
}

TEST(Protocol, ParseRequestRejectsMalformed) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request("{not json", &req, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_request("[1, 2]", &req, &error));
  EXPECT_FALSE(parse_request(R"({"id": 1})", &req, &error));  // no op
}

TEST(Protocol, EventLinesRoundTrip) {
  Event event;
  std::string error;

  const std::string hello = hello_line(42);
  EXPECT_EQ(hello.back(), '\n');
  ASSERT_TRUE(parse_event(hello, &event, &error)) << error;
  EXPECT_EQ(event.kind, Event::Kind::Hello);
  EXPECT_EQ(event.session, 42u);

  ASSERT_TRUE(parse_event(progress_line(3, 5, 9), &event, &error)) << error;
  EXPECT_EQ(event.kind, Event::Kind::Progress);
  EXPECT_EQ(event.id, 3u);
  EXPECT_EQ(event.done, 5u);
  EXPECT_EQ(event.total, 9u);

  auto data = json::Value::object();
  data.set("pong", json::Value(true));
  ASSERT_TRUE(parse_event(result_line(3, std::move(data)), &event, &error))
      << error;
  EXPECT_EQ(event.kind, Event::Kind::Result);
  EXPECT_TRUE(event.data.get_bool("pong", false));

  ASSERT_TRUE(parse_event(error_line(4, "boom"), &event, &error)) << error;
  EXPECT_EQ(event.kind, Event::Kind::Error);
  EXPECT_EQ(event.id, 4u);
  EXPECT_EQ(event.message, "boom");
}

TEST(Protocol, HelloWithWrongProtocolIsRejected) {
  Event event;
  std::string error;
  EXPECT_FALSE(parse_event(
      R"({"event": "hello", "protocol": "trident-serve/99", "session": 1})"
      "\n",
      &event, &error));
  EXPECT_NE(error.find("protocol"), std::string::npos) << error;
}

// A report string with embedded newlines must still be one line on the
// wire — the framing invariant the whole protocol rests on.
TEST(Protocol, ResultPayloadWithNewlinesStaysOneLine) {
  auto data = json::Value::object();
  data.set("report_md", json::Value(std::string("# Title\n\nrow1\nrow2\n")));
  const std::string line = result_line(1, std::move(data));
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  Event event;
  std::string error;
  ASSERT_TRUE(parse_event(line, &event, &error)) << error;
  EXPECT_EQ(event.data.get_string("report_md", ""), "# Title\n\nrow1\nrow2\n");
}

// ---- eval::InflightTable -----------------------------------------------

using eval::CellKey;
using eval::InflightTable;
using eval::ResultStore;

TEST(Inflight, SecondClaimOfPendingCellWaits) {
  ResultStore store(fresh_dir("serve_inflight_basic"));
  InflightTable table;
  const std::vector<CellKey> keys{{"a", "dep/a"}, {"b", "dep/b"}};

  const auto first = table.claim_all(store, keys, /*force=*/false);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].role, InflightTable::Role::Owner);
  EXPECT_EQ(first[1].role, InflightTable::Role::Owner);

  // The whole second claim waits on the first — deterministic split.
  const auto second = table.claim_all(store, keys, /*force=*/false);
  EXPECT_EQ(second[0].role, InflightTable::Role::Waiter);
  EXPECT_EQ(second[1].role, InflightTable::Role::Waiter);
  EXPECT_EQ(table.dedup_hits(), 2u);

  // Owner persists then publishes; waiters wake and find the cell.
  for (size_t i = 0; i < keys.size(); ++i) {
    auto data = json::Value::object();
    data.set("i", json::Value(static_cast<uint64_t>(i)));
    store.save(keys[i], std::move(data));
    table.publish(first[i].cell);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    table.wait(second[i].cell);  // must not block now
    const auto loaded = store.load(keys[i]);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->get_uint("i", 99), i);
  }
}

TEST(Inflight, StoredCellResolvesWithoutOwnership) {
  ResultStore store(fresh_dir("serve_inflight_hit"));
  InflightTable table;
  const CellKey key{"warm", "dep/warm"};
  auto data = json::Value::object();
  data.set("sdc", json::Value(uint64_t{3}));
  store.save(key, std::move(data));

  const auto claims = table.claim_all(store, {key}, /*force=*/false);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].role, InflightTable::Role::StoreHit);
  EXPECT_EQ(claims[0].data.get_uint("sdc", 0), 3u);
  EXPECT_EQ(table.dedup_hits(), 0u);
}

TEST(Inflight, ForceSkipsStoreButStillDedups) {
  ResultStore store(fresh_dir("serve_inflight_force"));
  InflightTable table;
  const CellKey key{"cell", "dep/cell"};
  store.save(key, json::Value::object());

  // force: the stored value must not satisfy the claim...
  const auto first = table.claim_all(store, {key}, /*force=*/true);
  EXPECT_EQ(first[0].role, InflightTable::Role::Owner);
  // ...but a concurrent identical computation is still shared.
  const auto second = table.claim_all(store, {key}, /*force=*/true);
  EXPECT_EQ(second[0].role, InflightTable::Role::Waiter);
  table.publish(first[0].cell);
  table.wait(second[0].cell);
}

TEST(Inflight, FailedOwnerWakesWaiterWithError) {
  ResultStore store(fresh_dir("serve_inflight_fail"));
  InflightTable table;
  const CellKey key{"bad", "dep/bad"};
  const auto owner = table.claim_all(store, {key}, false);
  const auto waiter = table.claim_all(store, {key}, false);
  ASSERT_EQ(waiter[0].role, InflightTable::Role::Waiter);

  table.fail(owner[0].cell, "campaign exploded");
  try {
    table.wait(waiter[0].cell);
    FAIL() << "wait() should rethrow the owner's failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("campaign exploded"),
              std::string::npos)
        << e.what();
  }
  // fail() on an already-resolved cell is a no-op (the abandoned-batch
  // sweep calls it unconditionally).
  table.fail(owner[0].cell, "later");

  // The key is free again: a new claim may retry as owner.
  const auto retry = table.claim_all(store, {key}, false);
  EXPECT_EQ(retry[0].role, InflightTable::Role::Owner);
  table.publish(retry[0].cell);
}

TEST(Inflight, WaiterBlocksUntilPublish) {
  ResultStore store(fresh_dir("serve_inflight_block"));
  InflightTable table;
  const CellKey key{"slow", "dep/slow"};
  const auto owner = table.claim_all(store, {key}, false);
  const auto waiter = table.claim_all(store, {key}, false);

  std::atomic<bool> woke{false};
  std::thread t([&] {
    table.wait(waiter[0].cell);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());
  table.publish(owner[0].cell);
  t.join();
  EXPECT_TRUE(woke.load());
}

// ---- FairScheduler -----------------------------------------------------

TEST(Scheduler, DrainsRoundRobinAcrossSessions) {
  // One slot + deferred start = fully deterministic drain order.
  FairScheduler scheduler(/*slots=*/1, /*autostart=*/false);
  const auto a = scheduler.register_session();
  const auto b = scheduler.register_session();

  std::mutex mutex;
  std::vector<std::string> order;
  const auto record = [&](const std::string& who, uint64_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    order.push_back(who + std::to_string(i));
  };

  // run_cells blocks, so each batch is staged from its own thread.
  std::thread ta([&] {
    scheduler.run_cells(a, 3, [&](uint64_t i) { record("a", i); });
  });
  std::thread tb([&] {
    scheduler.run_cells(b, 2, [&](uint64_t i) { record("b", i); });
  });
  while (scheduler.pending() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  scheduler.start();
  ta.join();
  tb.join();
  EXPECT_EQ(order,
            (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2"}));
  EXPECT_EQ(scheduler.tasks_run(), 5u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(Scheduler, RethrowsFirstBodyException) {
  FairScheduler scheduler;
  const auto session = scheduler.register_session();
  std::atomic<uint64_t> ran{0};
  try {
    scheduler.run_cells(session, 4, [&](uint64_t i) {
      ran.fetch_add(1);
      if (i == 2) throw std::runtime_error("cell 2 failed");
    });
    FAIL() << "run_cells should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 2 failed");
  }
  // The batch drains fully even on failure (no half-queued leftovers).
  EXPECT_EQ(ran.load(), 4u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(Scheduler, ManySessionsManyCellsAllRun) {
  FairScheduler scheduler(/*slots=*/4);
  std::atomic<uint64_t> ran{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < 6; ++s) {
    threads.emplace_back([&] {
      const auto session = scheduler.register_session();
      scheduler.run_cells(session, 25,
                          [&](uint64_t) { ran.fetch_add(1); });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ran.load(), 6u * 25u);
  EXPECT_EQ(scheduler.tasks_run(), 6u * 25u);
}

// ---- End-to-end daemon/client ------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

eval::ExperimentSpec e2e_spec() {
  eval::ExperimentSpec spec;
  spec.name = "serve-e2e";
  spec.workloads = {"pathfinder"};
  spec.models = {"full"};
  spec.seeds = {1};
  spec.fi.trials = 30;
  spec.per_inst.top_n = 1;
  spec.per_inst.trials = 10;
  return spec;
}

// Connects with retries: the daemon thread binds the socket
// asynchronously.
std::unique_ptr<Client> connect_with_retry(const std::string& socket_path) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      return std::make_unique<Client>(socket_path);
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  throw std::runtime_error("daemon never came up on " + socket_path);
}

TEST(ServeE2E, DaemonServedReportsMatchOfflineByteForByte) {
  ASSERT_TRUE(serve_supported());
  const auto spec = e2e_spec();

  // Offline reference run.
  eval::RunOptions offline;
  offline.out_dir = fresh_dir("serve_e2e_offline");
  const auto reference = eval::run_spec(spec, offline);

  // Socket paths must fit sun_path; keep it short and pid-unique.
  const std::string socket_path =
      "/tmp/trident-serve-test-" + std::to_string(::getpid()) + ".sock";
  obs::Registry registry;
  DaemonOptions options;
  options.socket_path = socket_path;
  options.store_dir = fresh_dir("serve_e2e_store");
  options.store_shards = 16;
  options.metrics = &registry;
  options.quiet = true;
  Daemon daemon(std::move(options));
  std::thread server([&] { daemon.serve(); });

  {
    auto client = connect_with_retry(socket_path);
    EXPECT_TRUE(client->ping());
    EXPECT_GT(client->session_id(), 0u);

    std::atomic<uint64_t> progress_events{0};
    const auto outcome = client->eval(
        spec.to_json(), /*force=*/false,
        [&](uint64_t, uint64_t) { progress_events.fetch_add(1); });

    EXPECT_EQ(outcome.spec_name, "serve-e2e");
    EXPECT_EQ(outcome.cells_total, reference.cells_total);
    EXPECT_EQ(outcome.cells_computed, reference.cells_total);
    EXPECT_EQ(outcome.cells_deduped, 0u);
    EXPECT_GT(outcome.fi_trials_run, 0u);
    EXPECT_GT(progress_events.load(), 0u);

    // The determinism contract: byte-identical artifacts, different
    // machine(s)/store/scheduler notwithstanding.
    EXPECT_EQ(outcome.report_json, eval::report_json(reference));
    EXPECT_EQ(outcome.report_csv, eval::overall_csv(reference));
    EXPECT_EQ(outcome.per_instruction_csv,
              eval::per_instruction_csv(reference));
    EXPECT_EQ(outcome.report_md, eval::report_markdown(reference));

    // Same spec again on the daemon's warm store: zero work.
    const auto warm = client->eval(spec.to_json(), false);
    EXPECT_EQ(warm.cells_computed, 0u);
    EXPECT_EQ(warm.cells_cached, warm.cells_total);
    EXPECT_EQ(warm.fi_trials_run, 0u);
    EXPECT_EQ(warm.report_json, outcome.report_json);

    // The sharded layout is real: cells live under hash-prefix dirs.
    bool found_sharded_cell = false;
    for (const auto& entry :
         fs::recursive_directory_iterator(daemon.options().store_dir)) {
      if (entry.is_regular_file() &&
          entry.path().parent_path() != daemon.options().store_dir) {
        found_sharded_cell = true;
        break;
      }
    }
    EXPECT_TRUE(found_sharded_cell);

    // predict and analyze ride the same connection.
    const auto prediction = client->predict("pathfinder", "full");
    EXPECT_EQ(prediction.get_string("target", ""), "pathfinder");
    const double sdc = prediction.get_double("sdc", -1.0);
    EXPECT_GE(sdc, 0.0);
    EXPECT_LE(sdc, 1.0);
    const auto lint = client->analyze("pathfinder");
    EXPECT_TRUE(lint.is_object());

    // stats must expose the serve counters mid-flight.
    const auto stats = client->stats();
    const auto* counters = stats.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(counters->get_uint("serve.requests", 0), 4u);

    client->shutdown_server();
  }
  server.join();

  EXPECT_NE(registry.to_json().find("serve.sessions"), std::string::npos);
  EXPECT_FALSE(fs::exists(socket_path));
}

TEST(ServeE2E, ServerSideErrorsSurfaceWithoutKillingTheSession) {
  ASSERT_TRUE(serve_supported());
  const std::string socket_path =
      "/tmp/trident-serve-err-" + std::to_string(::getpid()) + ".sock";
  DaemonOptions options;
  options.socket_path = socket_path;
  options.store_dir = fresh_dir("serve_e2e_err_store");
  options.quiet = true;
  Daemon daemon(std::move(options));
  std::thread server([&] { daemon.serve(); });
  {
    auto client = connect_with_retry(socket_path);
    // Unknown workload: the daemon replies with an error event...
    try {
      client->predict("nosuchworkload", "full");
      FAIL() << "predict of an unknown workload should throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("nosuchworkload"),
                std::string::npos)
          << e.what();
    }
    // ...and the session keeps serving.
    EXPECT_TRUE(client->ping());
    client->shutdown_server();
  }
  server.join();
}

#endif  // POSIX

}  // namespace
}  // namespace trident::serve
