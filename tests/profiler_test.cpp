#include <gtest/gtest.h>

#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::prof {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// A loop that stores N values and reloads them once (the paper's
// symmetric loop pair, Fig. 4), with a biased branch inside.
Module make_symmetric(int n) {
  Module m;
  const auto g = m.add_global({"arr", static_cast<uint64_t>(n) * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, n, 1, [&](Value i) {
    b.store(b.mul(i, i), b.gep(arr, i, 4));
  });
  const Value sum = b.alloca_(4, "sum");
  b.store(b.i32(0), sum);
  workloads::counted_loop(b, 0, n, 1, [&](Value i) {
    const Value v = b.load(Type::i32(), b.gep(arr, i, 4));
    b.store(b.add(b.load(Type::i32(), sum), v), sum);
  });
  b.print_int(b.load(Type::i32(), sum));
  b.ret();
  b.end_function();
  return m;
}

TEST(Profiler, ExecutionCountsMatchLoopTrip) {
  const auto m = make_symmetric(10);
  const auto profile = collect_profile(m);
  // Find the first loop's store (store of mul result).
  const auto& f = m.functions[0];
  uint32_t mul_id = ~0u;
  for (uint32_t i = 0; i < f.insts.size(); ++i) {
    if (f.insts[i].op == ir::Opcode::Mul) mul_id = i;
  }
  ASSERT_NE(mul_id, ~0u);
  EXPECT_EQ(profile.exec({0, mul_id}), 10u);
}

TEST(Profiler, GoldenOutputCaptured) {
  const auto m = make_symmetric(5);
  const auto profile = collect_profile(m);
  // sum of squares 0..4 = 30
  EXPECT_EQ(profile.golden_output, "30\n");
  EXPECT_GT(profile.total_dynamic, 0u);
  EXPECT_GT(profile.total_results, 0u);
  EXPECT_LT(profile.total_results, profile.total_dynamic);
}

TEST(Profiler, BranchProbabilitiesBiasedForLoops) {
  const auto m = make_symmetric(100);
  const auto profile = collect_profile(m);
  const auto& f = m.functions[0];
  for (uint32_t i = 0; i < f.insts.size(); ++i) {
    if (f.insts[i].op == ir::Opcode::CondBr && profile.exec({0, i}) > 0) {
      // Loop header branches: taken (stay in loop) ~ n/(n+1).
      EXPECT_NEAR(profile.branch_prob_taken({0, i}), 100.0 / 101, 1e-9);
    }
  }
}

TEST(Profiler, BranchProbDefaultsWhenNeverExecuted) {
  const auto m = make_symmetric(3);
  Profile profile = collect_profile(m);
  // Fabricate an unexecuted branch entry.
  ir::InstRef fake{0, 0};
  profile.funcs[0].branch[0] = {0, 0};
  EXPECT_DOUBLE_EQ(profile.branch_prob_taken(fake), 0.5);
}

TEST(Profiler, MemoryDependenciesAggregated) {
  const auto m = make_symmetric(50);
  const auto profile = collect_profile(m);
  // Expected static edges: arr-store->arr-load (50 dynamic deps),
  // sum-init->sum-load, sum-store->sum-load(s), sum-store->print-load.
  // The pruning collapses the 50 array deps into ONE static edge.
  bool found_array_edge = false;
  for (const auto& e : profile.mem_edges) {
    if (e.count == 50) found_array_edge = true;
  }
  EXPECT_TRUE(found_array_edge);
  EXPECT_GT(profile.dynamic_mem_deps, profile.mem_edges.size());
  EXPECT_GT(profile.pruning_ratio(), 0.5);  // most deps are redundant
}

TEST(Profiler, EdgesFromStoreLookup) {
  const auto m = make_symmetric(10);
  const auto profile = collect_profile(m);
  for (const auto& e : profile.mem_edges) {
    const auto found = profile.edges_from_store(e.store);
    EXPECT_FALSE(found.empty());
  }
}

TEST(Profiler, SegmentsCoverGlobalsAndAllocas) {
  const auto m = make_symmetric(10);
  const auto profile = collect_profile(m);
  // One global (arr) + at least the sum alloca + loop counters.
  EXPECT_GE(profile.segments.size(), 2u);
  // The global array's base address is valid for its whole extent.
  EXPECT_TRUE(profile.address_valid(profile.segments[0].first, 4));
  EXPECT_FALSE(profile.address_valid(0x1, 4));
}

TEST(Profiler, AddressValidityBoundaries) {
  const auto m = make_symmetric(4);
  const auto profile = collect_profile(m);
  const auto [base, size] = profile.segments[0];
  EXPECT_TRUE(profile.address_valid(base, 1));
  EXPECT_TRUE(profile.address_valid(base + size - 1, 1));
  EXPECT_FALSE(profile.address_valid(base + size, 1));
  EXPECT_FALSE(profile.address_valid(base + size - 1, 2));
}

TEST(Profiler, OperandSamplesOnlyForRelevantOpcodes) {
  const auto m = make_symmetric(10);
  const auto profile = collect_profile(m);
  const auto& f = m.functions[0];
  for (uint32_t i = 0; i < f.insts.size(); ++i) {
    const auto& samples = profile.funcs[0].operand_samples[i];
    switch (f.insts[i].op) {
      case ir::Opcode::ICmp:
      case ir::Opcode::Load:
      case ir::Opcode::Store:
        if (profile.exec({0, i}) > 0) {
          EXPECT_FALSE(samples.empty());
        }
        break;
      case ir::Opcode::Add:
      case ir::Opcode::Mul:
        EXPECT_TRUE(samples.empty());
        break;
      default:
        break;
    }
  }
}

TEST(Profiler, ReservoirCapsSampleCount) {
  const auto m = make_symmetric(500);
  ProfileOptions options;
  options.max_value_samples = 16;
  const auto profile = collect_profile(m, options);
  for (const auto& per_inst : profile.funcs[0].operand_samples) {
    EXPECT_LE(per_inst.size(), 16u);
  }
}

TEST(Profiler, DeterministicAcrossRuns) {
  const auto m = make_symmetric(20);
  const auto p1 = collect_profile(m);
  const auto p2 = collect_profile(m);
  EXPECT_EQ(p1.total_dynamic, p2.total_dynamic);
  EXPECT_EQ(p1.golden_output, p2.golden_output);
  EXPECT_EQ(p1.mem_edges.size(), p2.mem_edges.size());
  EXPECT_EQ(p1.funcs[0].exec, p2.funcs[0].exec);
}

TEST(Profiler, PackUnpackRoundTrip) {
  const ir::InstRef ref{17, 12345};
  EXPECT_EQ(unpack(pack(ref)), ref);
}

// Pruning ratios on the bundled workloads should be substantial — the
// §V-C claim (61.87% average in the paper; near-total for the regular
// loops our kernels use).
class WorkloadPruning
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(WorkloadPruning, PrunesRedundantDependencies) {
  const auto m = GetParam().build();
  const auto profile = collect_profile(m);
  EXPECT_GT(profile.pruning_ratio(), 0.5);
  EXPECT_FALSE(profile.mem_edges.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadPruning,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::prof
