// End-to-end integration: the full paper pipeline on selected workloads —
// profile -> model -> FI ground truth -> selective protection -> FI again.

#include <cmath>
#include <gtest/gtest.h>

#include "baselines/epvf.h"
#include "core/trident.h"
#include "fi/campaign.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "protect/duplication.h"
#include "protect/selector.h"
#include "stats/ttest.h"
#include "workloads/workloads.h"

namespace trident {
namespace {

TEST(Integration, ModelTracksFiOnHotspot) {
  const auto m = workloads::find_workload("hotspot").build();
  const auto profile = prof::collect_profile(m);
  const core::Trident model(m, profile);
  fi::CampaignOptions options;
  options.trials = 600;
  const auto campaign = fi::run_overall_campaign(m, profile, options);
  // Agreement within 15 percentage points on this workload (the paper's
  // per-benchmark differences range up to ~14 points).
  EXPECT_NEAR(model.overall_sdc_exact(), campaign.sdc_prob(), 0.15);
}

TEST(Integration, TridentCloserToFiThanBaselinesOnAverage) {
  // Paper Figs. 5 & 9 shape: averaged across workloads, TRIDENT's error
  // against FI is smaller than fs+fc's and far smaller than PVF's.
  double trident_err = 0, fsfc_err = 0, pvf_err = 0;
  const std::vector<std::string> names{"sad", "bfs_parboil", "hotspot",
                                       "hercules", "nw"};
  for (const auto& name : names) {
    const auto m = workloads::find_workload(name).build();
    const auto profile = prof::collect_profile(m);
    fi::CampaignOptions options;
    options.trials = 400;
    const auto campaign = fi::run_overall_campaign(m, profile, options);
    const double fi_sdc = campaign.sdc_prob();
    const core::Trident full(m, profile, core::ModelConfig::full());
    const core::Trident fsfc(m, profile, core::ModelConfig::fs_fc());
    const baselines::PvfModel pvf(m, profile);
    trident_err += std::abs(full.overall_sdc_exact() - fi_sdc);
    fsfc_err += std::abs(fsfc.overall_sdc_exact() - fi_sdc);
    pvf_err += std::abs(pvf.overall() - fi_sdc);
  }
  EXPECT_LT(trident_err, fsfc_err);
  EXPECT_LT(trident_err, pvf_err);
}

TEST(Integration, PerInstructionPredictionCorrelatesWithFi) {
  // On the hottest instructions of sad, the model must separate the
  // near-certain-SDC instructions from the near-never ones.
  const auto m = workloads::find_workload("sad").build();
  const auto profile = prof::collect_profile(m);
  const core::Trident model(m, profile);
  auto insts = model.injectable_instructions();
  std::sort(insts.begin(), insts.end(),
            [&](const ir::InstRef& a, const ir::InstRef& b) {
              return profile.exec(a) > profile.exec(b);
            });
  insts.resize(std::min<size_t>(insts.size(), 12));

  std::vector<double> fi_vals, model_vals;
  for (const auto& ref : insts) {
    fi::CampaignOptions options;
    options.trials = 60;
    options.seed = 1000 + ref.inst;
    fi_vals.push_back(
        fi::run_instruction_campaign(m, profile, ref, options).sdc_prob());
    model_vals.push_back(model.predict(ref).sdc);
  }
  // Rank agreement: the model's top prediction should not be one of the
  // measured-lowest, and vice versa. Use a loose correlation bound.
  double mean_fi = 0, mean_model = 0;
  for (size_t i = 0; i < fi_vals.size(); ++i) {
    mean_fi += fi_vals[i];
    mean_model += model_vals[i];
  }
  mean_fi /= fi_vals.size();
  mean_model /= model_vals.size();
  double cov = 0, var_a = 0, var_b = 0;
  for (size_t i = 0; i < fi_vals.size(); ++i) {
    cov += (fi_vals[i] - mean_fi) * (model_vals[i] - mean_model);
    var_a += (fi_vals[i] - mean_fi) * (fi_vals[i] - mean_fi);
    var_b += (model_vals[i] - mean_model) * (model_vals[i] - mean_model);
  }
  if (var_a > 0 && var_b > 0) {
    EXPECT_GT(cov / std::sqrt(var_a * var_b), 0.3);
  }
}

TEST(Integration, SelectiveProtectionReducesSdc) {
  // §VI end to end on pathfinder at the 1/3 budget.
  const auto m = workloads::find_workload("pathfinder").build();
  const auto profile = prof::collect_profile(m);
  const core::Trident model(m, profile);
  const auto plan = protect::select_for_duplication(
      m, profile,
      [&](ir::InstRef ref) { return model.predict(ref).sdc; }, 1.0 / 3);
  ASSERT_FALSE(plan.selected.empty());

  const auto result = protect::duplicate_instructions(m, plan.selected);
  ASSERT_TRUE(ir::verify(result.module).empty());

  const auto prot_profile = prof::collect_profile(result.module);
  fi::CampaignOptions options;
  options.trials = 800;
  const auto before = fi::run_overall_campaign(m, profile, options);
  const auto after =
      fi::run_overall_campaign(result.module, prot_profile, options);
  EXPECT_LT(after.sdc_prob(), before.sdc_prob());
  EXPECT_GT(after.detected, 0u);
  // Overhead proxy: selected duplication must cost less than full
  // duplication's dynamic overhead.
  const double overhead =
      static_cast<double>(prot_profile.total_dynamic) /
          profile.total_dynamic -
      1.0;
  const auto full = protect::duplicate_all(m);
  const auto full_profile = prof::collect_profile(full.module);
  const double full_overhead =
      static_cast<double>(full_profile.total_dynamic) /
          profile.total_dynamic -
      1.0;
  EXPECT_LT(overhead, full_overhead);
}

TEST(Integration, HigherBudgetGivesMoreProtection) {
  const auto m = workloads::find_workload("nw").build();
  const auto profile = prof::collect_profile(m);
  const core::Trident model(m, profile);
  const auto sdc_of = [&](ir::InstRef ref) { return model.predict(ref).sdc; };
  const auto small =
      protect::select_for_duplication(m, profile, sdc_of, 1.0 / 3);
  const auto large =
      protect::select_for_duplication(m, profile, sdc_of, 2.0 / 3);
  EXPECT_GE(large.selected.size(), small.selected.size());
  EXPECT_GE(large.expected_covered, small.expected_covered);
}

TEST(Integration, PaperOrderingOfModels) {
  // Fig. 9: PVF >= ePVF (conservative crash removal) and both well above
  // FI; TRIDENT in between FI and ePVF.
  const auto m = workloads::find_workload("hercules").build();
  const auto profile = prof::collect_profile(m);
  fi::CampaignOptions options;
  options.trials = 400;
  const auto campaign = fi::run_overall_campaign(m, profile, options);
  const core::Trident trident(m, profile);
  const baselines::EpvfModel epvf(m, profile);
  const double pvf_v = epvf.pvf().overall();
  const double epvf_v =
      epvf.overall_with_measured_crashes(campaign.crash_prob());
  EXPECT_GE(pvf_v, epvf_v);
  EXPECT_GT(pvf_v, campaign.sdc_prob());
  EXPECT_GT(pvf_v, trident.overall_sdc_exact());
}

TEST(Integration, ModelIsDeterministicEndToEnd) {
  const auto run_once = [] {
    const auto m = workloads::find_workload("libquantum").build();
    const auto profile = prof::collect_profile(m);
    const core::Trident model(m, profile);
    return model.overall_sdc_exact();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace trident
