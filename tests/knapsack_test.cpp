#include <gtest/gtest.h>

#include <numeric>

#include "protect/knapsack.h"
#include "support/rng.h"

namespace trident::protect {
namespace {

double total_profit(const std::vector<KnapsackItem>& items,
                    const std::vector<uint32_t>& picked) {
  double p = 0;
  for (const auto i : picked) p += items[i].profit;
  return p;
}

uint64_t total_weight(const std::vector<KnapsackItem>& items,
                      const std::vector<uint32_t>& picked) {
  uint64_t w = 0;
  for (const auto i : picked) w += items[i].weight;
  return w;
}

TEST(Knapsack, EmptyInputs) {
  EXPECT_TRUE(knapsack_select({}, 100).empty());
  const std::vector<KnapsackItem> items{{1.0, 1}};
  EXPECT_TRUE(knapsack_select(items, 0).empty());
}

TEST(Knapsack, TakesEverythingWhenItFits) {
  const std::vector<KnapsackItem> items{{1, 2}, {2, 3}, {3, 4}};
  const auto picked = knapsack_select(items, 100);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(Knapsack, ClassicOptimum) {
  // Textbook instance: weights {1,3,4,5}, profits {1,4,5,7}, cap 7:
  // optimum is items {1,2} with profit 9.
  const std::vector<KnapsackItem> items{{1, 1}, {4, 3}, {5, 4}, {7, 5}};
  const auto picked = knapsack_select(items, 7);
  EXPECT_DOUBLE_EQ(total_profit(items, picked), 9.0);
  EXPECT_LE(total_weight(items, picked), 7u);
}

TEST(Knapsack, PrefersDensityUnderTightBudget) {
  const std::vector<KnapsackItem> items{
      {10.0, 100},  // density 0.1
      {9.0, 10},    // density 0.9
  };
  const auto picked = knapsack_select(items, 50);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(Knapsack, IgnoresZeroProfitItems) {
  const std::vector<KnapsackItem> items{{0.0, 1}, {1.0, 1}};
  const auto picked = knapsack_select(items, 2);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(Knapsack, OverweightItemNeverPicked) {
  const std::vector<KnapsackItem> items{{100.0, 1000}, {1.0, 1}};
  const auto picked = knapsack_select(items, 10);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(Knapsack, CapacityRespectedWithScaling) {
  // Large weights force bucket scaling; ceil-scaling must never exceed
  // the true capacity.
  support::Rng rng(5);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 200; ++i) {
    items.push_back(
        {rng.next_double() * 10, 1'000'000 + rng.next_below(5'000'000)});
  }
  const uint64_t capacity = 100'000'000;
  const auto picked = knapsack_select(items, capacity);
  EXPECT_FALSE(picked.empty());
  EXPECT_LE(total_weight(items, picked), capacity);
}

TEST(Knapsack, ScaledSolutionNearExact) {
  // Small instance solved exactly (no scaling) vs forced coarse
  // scaling: the scaled profit must be close to the exact optimum.
  support::Rng rng(9);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 60; ++i) {
    items.push_back({rng.next_double(), 1 + rng.next_below(50)});
  }
  const uint64_t capacity = 400;
  const auto exact = knapsack_select(items, capacity, 1u << 20);
  const auto scaled = knapsack_select(items, capacity, 64);
  EXPECT_GE(total_profit(items, scaled),
            0.85 * total_profit(items, exact));
  EXPECT_LE(total_weight(items, scaled), capacity);
}

TEST(Knapsack, IndicesSortedAndUnique) {
  const std::vector<KnapsackItem> items{{3, 2}, {2, 2}, {4, 2}, {1, 2}};
  const auto picked = knapsack_select(items, 6);
  for (size_t i = 1; i < picked.size(); ++i) {
    EXPECT_LT(picked[i - 1], picked[i]);
  }
}

}  // namespace
}  // namespace trident::protect
