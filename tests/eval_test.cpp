// Evaluation-subsystem tests: the JSON layer, the spec grammar, the
// content-addressed store, and the two end-to-end guarantees the
// subsystem is built around — byte-identical report artifacts at any
// thread count, and cell-granular resume (delete one cell, re-run,
// only that cell recomputes).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/report.h"
#include "eval/runner.h"
#include "eval/spec.h"
#include "eval/store.h"
#include "support/json.h"
#include "workloads/workloads.h"

namespace trident::eval {
namespace {

namespace fs = std::filesystem;
namespace json = support::json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  return path;
}

// ---- support::json -----------------------------------------------------

TEST(Json, ParseRoundTripPreservesOrderAndIntegers) {
  const std::string text =
      R"({"zebra":1,"alpha":{"b":[1,2,3],"a":true},"n":18446744073709551615})";
  json::ParseError err;
  const auto v = json::parse(text, &err);
  ASSERT_TRUE(v.has_value()) << err.message;
  // Insertion order survives the round trip — writer determinism (the
  // writer's single-line form puts a space after ':' and ',').
  EXPECT_EQ(v->write(),
            R"({"zebra": 1, "alpha": {"b": [1, 2, 3], "a": true}, )"
            R"("n": 18446744073709551615})");
  // uint64 max round-trips exactly (no double truncation).
  const auto* n = v->find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->is_exact_uint());
  EXPECT_EQ(n->as_uint(), 18446744073709551615ull);
}

TEST(Json, ParseRejectsGarbage) {
  json::ParseError err;
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &err).has_value());
  EXPECT_FALSE(json::parse("{\"a\":}", &err).has_value());
  EXPECT_FALSE(json::parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(json::parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(json::parse("", &err).has_value());
  EXPECT_FALSE(json::parse("nul", &err).has_value());
  // The error carries a byte offset at or just past the offending byte.
  err = {};
  EXPECT_FALSE(json::parse("[1, 2, x]", &err).has_value());
  EXPECT_GE(err.offset, 7u);
  EXPECT_LE(err.offset, 8u);
}

TEST(Json, StringEscapes) {
  json::ParseError err;
  const auto v = json::parse(R"(["a\"b\\c\n\tA"])", &err);
  ASSERT_TRUE(v.has_value()) << err.message;
  EXPECT_EQ(v->items()[0].as_string(), "a\"b\\c\n\tA");
  // Writer escapes control characters and quotes on the way out.
  std::string out;
  json::append_quoted(out, "x\"y\nz");
  EXPECT_EQ(out, R"("x\"y\nz")");
}

TEST(Json, TypedGettersWithFallbacks) {
  json::ParseError err;
  const auto v = json::parse(R"({"u":7,"d":0.5,"b":true,"s":"hi"})", &err);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_uint("u", 0), 7u);
  EXPECT_DOUBLE_EQ(v->get_double("d", 0), 0.5);
  EXPECT_TRUE(v->get_bool("b", false));
  EXPECT_EQ(v->get_string("s", ""), "hi");
  EXPECT_EQ(v->get_uint("missing", 42), 42u);
  EXPECT_EQ(v->find("missing"), nullptr);
}

// ---- ExperimentSpec ----------------------------------------------------

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.name = "tiny";
  spec.workloads = {"pathfinder", "hotspot"};
  spec.models = {"full", "fs", "pvf"};
  spec.seeds = {1};
  spec.fi.trials = 30;
  spec.per_inst.top_n = 2;
  spec.per_inst.trials = 10;
  return spec;
}

TEST(Spec, ParseAcceptsMinimalDocument) {
  ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(parse_spec(
      R"({"schema":"trident-eval-spec/1","name":"t",
          "workloads":["pathfinder"]})",
      &spec, &error))
      << error;
  EXPECT_EQ(spec.name, "t");
  ASSERT_EQ(spec.workloads.size(), 1u);
  // Defaults fill the rest.
  EXPECT_EQ(spec.fi.trials, 2000u);
  EXPECT_EQ(spec.models.size(), 5u);
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
}

TEST(Spec, ParseRejectsWrongSchemaAndBadJson) {
  ExperimentSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec(R"({"schema":"bogus/1","workloads":["x"]})",
                          &spec, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  EXPECT_FALSE(parse_spec("{not json", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Spec, ValidateUnknownWorkloadListsRegisteredNames) {
  auto spec = tiny_spec();
  spec.workloads = {"pathfinder", "nosuchworkload"};
  const auto msg = spec.validate();
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("nosuchworkload"), std::string::npos) << msg;
  for (const auto& w : workloads::all_workloads()) {
    EXPECT_NE(msg.find(w.name), std::string::npos) << msg;
  }
}

TEST(Spec, ValidateUnknownModelListsKnownNames) {
  auto spec = tiny_spec();
  spec.models = {"full", "nosuchmodel"};
  const auto msg = spec.validate();
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("nosuchmodel"), std::string::npos) << msg;
  for (const auto& m : known_model_names()) {
    EXPECT_NE(msg.find(m), std::string::npos) << msg;
  }
}

TEST(Spec, ValidateRejectsEmptyAndDegenerate) {
  auto spec = tiny_spec();
  spec.workloads.clear();
  EXPECT_FALSE(spec.validate().empty());
  spec = tiny_spec();
  spec.seeds.clear();
  EXPECT_FALSE(spec.validate().empty());
  spec = tiny_spec();
  spec.fi.trials = 0;
  EXPECT_FALSE(spec.validate().empty());
  spec = tiny_spec();
  spec.models = {"full", "full"};
  EXPECT_FALSE(spec.validate().empty());
}

TEST(Spec, StarExpandsToRegistryOrder) {
  auto spec = tiny_spec();
  spec.workloads = {"*"};
  const auto expanded = spec.expanded_workloads();
  const auto& all = workloads::all_workloads();
  ASSERT_EQ(expanded.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(expanded[i], all[i].name);
  }
}

TEST(Spec, JsonRoundTrip) {
  auto spec = tiny_spec();
  spec.salt = "local-patch";
  ExperimentSpec back;
  std::string error;
  ASSERT_TRUE(parse_spec(spec.to_json(), &back, &error)) << error;
  EXPECT_EQ(back.to_json(), spec.to_json());
  EXPECT_EQ(back.salt, "local-patch");
  EXPECT_EQ(back.per_inst.top_n, 2u);
}

// ---- ResultStore -------------------------------------------------------

TEST(Store, SaveThenLoadHits) {
  ResultStore store(fresh_dir("eval_store_hit"));
  const CellKey key{"fi-demo-s1", "salt|demo|fi|s=1"};
  auto data = json::Value::object();
  data.set("trials", json::Value(uint64_t{30}));
  data.set("sdc", json::Value(uint64_t{7}));
  store.save(key, std::move(data));
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->get_uint("trials", 0), 30u);
  EXPECT_EQ(loaded->get_uint("sdc", 0), 7u);
}

TEST(Store, CanonicalMismatchIsAMiss) {
  ResultStore store(fresh_dir("eval_store_mismatch"));
  const CellKey key{"cell", "deps/v1"};
  store.save(key, json::Value::object());
  EXPECT_TRUE(store.load(key).has_value());
  // Same slug, different dependency string: different file name, miss.
  EXPECT_FALSE(store.load(CellKey{"cell", "deps/v2"}).has_value());
  // A colliding file whose embedded key disagrees is also a miss, not
  // silently wrong data: simulate by editing the canonical key in situ.
  const auto path = store.cell_path(key);
  auto text = read_file(path);
  const auto pos = text.find("deps/v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "deps/vX");
  std::ofstream(path, std::ios::binary) << text;
  EXPECT_FALSE(store.load(key).has_value());
}

TEST(Store, CorruptFileIsAMiss) {
  ResultStore store(fresh_dir("eval_store_corrupt"));
  const CellKey key{"cell", "deps"};
  store.save(key, json::Value::object());
  std::ofstream(store.cell_path(key), std::ios::binary) << "{torn write";
  EXPECT_FALSE(store.load(key).has_value());
}

TEST(Store, SaveRemovesCheckpointSidecar) {
  ResultStore store(fresh_dir("eval_store_sidecar"));
  const CellKey key{"fi-x-s1", "deps"};
  std::ofstream(store.checkpoint_path(key)) << "{}\n";
  ASSERT_TRUE(fs::exists(store.checkpoint_path(key)));
  store.save(key, json::Value::object());
  EXPECT_FALSE(fs::exists(store.checkpoint_path(key)));
}

TEST(Store, ShardedLayoutPlacesCellsByHashPrefix) {
  const auto dir = fresh_dir("eval_store_sharded");
  StoreOptions options;
  options.shards = 16;
  ResultStore store(dir, options);
  EXPECT_EQ(store.shards(), 16u);
  // Every shard directory exists up front (no mkdir races later).
  for (const char c : std::string("0123456789abcdef")) {
    EXPECT_TRUE(fs::is_directory(dir + "/" + std::string(1, c))) << c;
  }
  const CellKey key{"cell", "dep/sharded"};
  store.save(key, json::Value::object());
  // The cell file lives under the 1-hex-digit prefix of its key hash.
  EXPECT_EQ(store.cell_path(key),
            dir + "/" + key.hash_hex().substr(0, 1) + "/cell-" +
                key.hash_hex() + ".json");
  EXPECT_TRUE(fs::exists(store.cell_path(key)));
  ASSERT_TRUE(store.load(key).has_value());

  // 256 shards use a 2-digit prefix.
  StoreOptions wide;
  wide.shards = 256;
  ResultStore store256(fresh_dir("eval_store_sharded256"), wide);
  EXPECT_EQ(store256.cell_path(key),
            store256.dir() + "/" + key.hash_hex().substr(0, 2) + "/cell-" +
                key.hash_hex() + ".json");
}

TEST(Store, InvalidShardCountThrows) {
  StoreOptions options;
  options.shards = 7;
  EXPECT_THROW(ResultStore(fresh_dir("eval_store_badshards"), options),
               std::runtime_error);
}

TEST(Store, ShardedStoreReadsThroughFlatLegacyLayout) {
  // A store written flat yesterday keeps serving hits after the
  // directory is reopened sharded.
  const auto dir = fresh_dir("eval_store_legacy");
  const CellKey key{"cell", "dep/legacy"};
  {
    ResultStore flat(dir);
    auto data = json::Value::object();
    data.set("sdc", json::Value(uint64_t{5}));
    flat.save(key, std::move(data));
  }
  StoreOptions options;
  options.shards = 16;
  ResultStore sharded(dir, options);
  const auto loaded = sharded.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->get_uint("sdc", 0), 5u);
  // New writes land in the sharded layout, not the flat slot.
  sharded.save(CellKey{"cell", "dep/new"}, json::Value::object());
  EXPECT_FALSE(
      fs::exists(dir + "/cell-" + CellKey{"cell", "dep/new"}.hash_hex() +
                 ".json"));
}

TEST(Store, UpstreamFederationServesMissesReadOnly) {
  // Upstream warm store (sharded), local store empty (flat): the local
  // store serves upstream cells without ever writing upstream.
  const auto upstream_dir = fresh_dir("eval_store_upstream");
  const CellKey key{"cell", "dep/upstream"};
  {
    StoreOptions options;
    options.shards = 16;
    ResultStore upstream(upstream_dir, options);
    auto data = json::Value::object();
    data.set("sdc", json::Value(uint64_t{9}));
    upstream.save(key, std::move(data));
  }
  StoreOptions options;
  options.upstream_dir = upstream_dir;
  ResultStore local(fresh_dir("eval_store_local"), options);
  EXPECT_EQ(local.upstream_hits(), 0u);
  const auto loaded = local.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->get_uint("sdc", 0), 9u);
  EXPECT_EQ(local.upstream_hits(), 1u);
  // A genuine miss stays a miss (and still counts no upstream hit).
  EXPECT_FALSE(local.load(CellKey{"cell", "dep/absent"}).has_value());
  EXPECT_EQ(local.upstream_hits(), 1u);
  // Writes go to the local store; upstream is never touched.
  local.save(CellKey{"cell", "dep/local"}, json::Value::object());
  EXPECT_TRUE(fs::exists(local.cell_path(CellKey{"cell", "dep/local"})));
  const auto upstream_files =
      std::distance(fs::recursive_directory_iterator(upstream_dir),
                    fs::recursive_directory_iterator{});
  ResultStore reopened(upstream_dir, StoreOptions{16, ""});
  EXPECT_FALSE(reopened.load(CellKey{"cell", "dep/local"}).has_value());
  EXPECT_EQ(std::distance(fs::recursive_directory_iterator(upstream_dir),
                          fs::recursive_directory_iterator{}),
            upstream_files);
}

TEST(Store, RacingWritersLeaveCompleteCells) {
  // Many threads hammering the same sharded store — identical keys and
  // distinct keys — must leave every cell complete and loadable (the
  // serve daemon's sessions do exactly this).
  StoreOptions options;
  options.shards = 16;
  ResultStore store(fresh_dir("eval_store_race"), options);
  constexpr int kThreads = 8;
  constexpr int kDistinct = 24;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kDistinct; ++i) {
        // Same key set from every thread: last rename wins, each file
        // is always either the old or the new complete cell.
        const CellKey key{"race", "dep/race/" + std::to_string(i)};
        auto data = json::Value::object();
        data.set("writer", json::Value(static_cast<uint64_t>(t)));
        data.set("i", json::Value(static_cast<uint64_t>(i)));
        store.save(key, std::move(data));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kDistinct; ++i) {
    const CellKey key{"race", "dep/race/" + std::to_string(i)};
    const auto loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value()) << i;
    EXPECT_EQ(loaded->get_uint("i", 999), static_cast<uint64_t>(i));
    EXPECT_LT(loaded->get_uint("writer", 999),
              static_cast<uint64_t>(kThreads));
  }
  // No temp-file litter survives the races.
  for (const auto& entry : fs::recursive_directory_iterator(store.dir())) {
    if (entry.is_regular_file()) {
      EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
    }
  }
}

TEST(Store, CorruptShardedCellRecoversOnResave) {
  StoreOptions options;
  options.shards = 16;
  ResultStore store(fresh_dir("eval_store_shard_corrupt"), options);
  const CellKey key{"cell", "dep/corrupt"};
  store.save(key, json::Value::object());
  std::ofstream(store.cell_path(key), std::ios::binary) << "{torn";
  EXPECT_FALSE(store.load(key).has_value());  // miss, not poison
  auto data = json::Value::object();
  data.set("ok", json::Value(true));
  store.save(key, std::move(data));
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->get_bool("ok", false));
}

TEST(Store, KeyHashIsStable) {
  // Pin the FNV-1a vectors so a silent hash change (which would orphan
  // every existing store) fails loudly.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  const CellKey key{"slug", "a"};
  EXPECT_EQ(key.hash_hex(), "af63dc4c8601ec8c");
}

TEST(Store, KeysSeparateEveryDimension) {
  const auto spec = tiny_spec();
  const auto& w1 = workloads::find_workload("pathfinder");
  const auto& w2 = workloads::find_workload("hotspot");
  std::vector<std::string> canon{
      fi_overall_key(spec, w1, 1).canonical,
      fi_overall_key(spec, w1, 2).canonical,   // seed
      fi_overall_key(spec, w2, 1).canonical,   // workload
      model_key(spec, w1, "full").canonical,
      model_key(spec, w1, "fs").canonical,     // model config
      model_key(spec, w1, "pvf").canonical,    // baseline
      fi_inst_key(spec, w1, ir::InstRef{0, 1}, 1).canonical,
      fi_inst_key(spec, w1, ir::InstRef{0, 2}, 1).canonical,  // target
  };
  for (size_t i = 0; i < canon.size(); ++i) {
    EXPECT_NE(canon[i].find(kCodeVersionSalt), std::string::npos);
    for (size_t j = i + 1; j < canon.size(); ++j) {
      EXPECT_NE(canon[i], canon[j]) << i << " vs " << j;
    }
  }
  // The user salt feeds the key too.
  auto salted = spec;
  salted.salt = "patched";
  EXPECT_NE(fi_overall_key(salted, w1, 1).canonical,
            fi_overall_key(spec, w1, 1).canonical);
  // FI settings invalidate FI cells but not model cells.
  auto more_trials = spec;
  more_trials.fi.trials = 60;
  EXPECT_NE(fi_overall_key(more_trials, w1, 1).canonical,
            fi_overall_key(spec, w1, 1).canonical);
  EXPECT_EQ(model_key(more_trials, w1, "full").canonical,
            model_key(spec, w1, "full").canonical);
}

// ---- End-to-end: determinism and resume --------------------------------

struct Artifacts {
  std::string csv, per_inst_csv, json_text, md;
};

Artifacts run_tiny(const std::string& out_dir, uint32_t threads) {
  auto spec = tiny_spec();
  RunOptions options;
  options.out_dir = out_dir;
  options.threads = threads;
  const auto results = run_spec(spec, options);
  const auto paths = write_reports(results, out_dir);
  return {read_file(paths.report_csv), read_file(paths.per_instruction_csv),
          read_file(paths.report_json), read_file(paths.report_md)};
}

TEST(EvalGolden, ReportsAreByteIdenticalAcrossThreadCounts) {
  const auto a = run_tiny(fresh_dir("eval_golden_t1"), 1);
  const auto b = run_tiny(fresh_dir("eval_golden_t8"), 8);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.per_inst_csv, b.per_inst_csv);
  EXPECT_EQ(a.json_text, b.json_text);
  EXPECT_EQ(a.md, b.md);
  // Sanity: the artifacts carry real content, not matching emptiness.
  EXPECT_NE(a.csv.find("pathfinder"), std::string::npos);
  EXPECT_NE(a.csv.find("hotspot"), std::string::npos);
  EXPECT_NE(a.json_text.find("\"schema\": \"trident-eval/1\""),
            std::string::npos);
  EXPECT_NE(a.md.find("Wilson"), std::string::npos);
}

TEST(EvalGolden, RerunOverWarmStoreRunsZeroTrials) {
  const auto out = fresh_dir("eval_warm");
  auto spec = tiny_spec();
  RunOptions options;
  options.out_dir = out;
  const auto fresh = run_spec(spec, options);
  EXPECT_EQ(fresh.cells_computed, fresh.cells_total);
  EXPECT_EQ(fresh.cells_cached, 0u);
  EXPECT_GT(fresh.fi_trials_run, 0u);

  const auto warm = run_spec(spec, options);
  EXPECT_EQ(warm.cells_total, fresh.cells_total);
  EXPECT_EQ(warm.cells_computed, 0u);
  EXPECT_EQ(warm.cells_cached, warm.cells_total);
  EXPECT_EQ(warm.fi_trials_run, 0u);
  // The warm run assembles the same report bytes.
  EXPECT_EQ(report_json(warm), report_json(fresh));
  EXPECT_EQ(overall_csv(warm), overall_csv(fresh));
}

TEST(EvalGolden, DeletedCellIsTheOnlyThingRecomputed) {
  const auto out = fresh_dir("eval_resume");
  auto spec = tiny_spec();
  RunOptions options;
  options.out_dir = out;
  const auto fresh = run_spec(spec, options);

  // Delete exactly one FI cell.
  ResultStore store(out + "/store");
  const auto key =
      fi_overall_key(spec, workloads::find_workload("hotspot"), 1);
  ASSERT_TRUE(fs::exists(store.cell_path(key)));
  fs::remove(store.cell_path(key));

  const auto resumed = run_spec(spec, options);
  EXPECT_EQ(resumed.cells_computed, 1u);
  EXPECT_EQ(resumed.cells_cached, resumed.cells_total - 1);
  // Only that cell's campaign ran: exactly fi.trials injections.
  EXPECT_EQ(resumed.fi_trials_run, spec.fi.trials);
  // And the recomputed cell reproduces the original tallies (campaigns
  // are seeded, so the report is unchanged).
  EXPECT_EQ(report_json(resumed), report_json(fresh));
}

TEST(EvalGolden, ForceRecomputesEverything) {
  const auto out = fresh_dir("eval_force");
  auto spec = tiny_spec();
  spec.workloads = {"pathfinder"};
  RunOptions options;
  options.out_dir = out;
  const auto fresh = run_spec(spec, options);
  options.force = true;
  const auto forced = run_spec(spec, options);
  EXPECT_EQ(forced.cells_computed, forced.cells_total);
  EXPECT_EQ(forced.cells_cached, 0u);
  EXPECT_EQ(report_json(forced), report_json(fresh));
}

TEST(EvalGolden, InvalidSpecThrows) {
  auto spec = tiny_spec();
  spec.workloads = {"nosuchworkload"};
  RunOptions options;
  options.out_dir = fresh_dir("eval_invalid");
  EXPECT_THROW(run_spec(spec, options), std::runtime_error);
}

}  // namespace
}  // namespace trident::eval
