#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/control_dependence.h"
#include "analysis/def_use.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "ir/builder.h"

namespace trident::analysis {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Diamond: entry -> {left, right} -> join -> exit(ret).
struct Diamond {
  Module m;
  uint32_t entry, left, right, join;
};

Diamond make_diamond() {
  Diamond d;
  IRBuilder b(d.m);
  b.begin_function("f", {Type::i1()}, Type::void_());
  d.entry = b.block("entry");
  d.left = b.block("left");
  d.right = b.block("right");
  d.join = b.block("join");
  b.set_block(d.entry);
  b.cond_br(b.arg(0), d.left, d.right);
  b.set_block(d.left);
  b.br(d.join);
  b.set_block(d.right);
  b.br(d.join);
  b.set_block(d.join);
  b.ret();
  b.end_function();
  return d;
}

// Loop: entry -> header; header -> {body, exit}; body -> header.
struct LoopCfg {
  Module m;
  uint32_t entry, header, body, exit;
};

LoopCfg make_loop() {
  LoopCfg l;
  IRBuilder b(l.m);
  b.begin_function("f", {}, Type::void_());
  l.entry = b.block("entry");
  l.header = b.block("header");
  l.body = b.block("body");
  l.exit = b.block("exit");
  b.set_block(l.entry);
  b.br(l.header);
  b.set_block(l.header);
  const Value iv = b.phi(Type::i32(), "iv");
  b.add_phi_incoming(iv, b.i32(0), l.entry);
  const Value c = b.icmp(CmpPred::SLt, iv, b.i32(10));
  b.cond_br(c, l.body, l.exit);
  b.set_block(l.body);
  const Value next = b.add(iv, b.i32(1));
  b.br(l.header);
  b.add_phi_incoming(iv, next, l.body);
  b.set_block(l.exit);
  b.ret();
  b.end_function();
  return l;
}

// Nested loops: entry -> outer.header -> inner.header -> inner.body ->
// inner.header; inner.header -> outer.latch -> outer.header; outer exits.
struct NestedLoops {
  Module m;
  uint32_t entry, outer_header, inner_header, inner_body, outer_latch, exit;
};

NestedLoops make_nested_loops() {
  NestedLoops n;
  IRBuilder b(n.m);
  b.begin_function("f", {}, Type::void_());
  n.entry = b.block("entry");
  n.outer_header = b.block("outer.header");
  n.inner_header = b.block("inner.header");
  n.inner_body = b.block("inner.body");
  n.outer_latch = b.block("outer.latch");
  n.exit = b.block("exit");
  b.set_block(n.entry);
  b.br(n.outer_header);
  b.set_block(n.outer_header);
  const Value oc = b.phi(Type::i1());
  b.add_phi_incoming(oc, b.i1(true), n.entry);
  b.cond_br(oc, n.inner_header, n.exit);
  b.set_block(n.inner_header);
  const Value ic = b.phi(Type::i1());
  b.add_phi_incoming(ic, b.i1(true), n.outer_header);
  b.cond_br(ic, n.inner_body, n.outer_latch);
  b.set_block(n.inner_body);
  b.br(n.inner_header);
  b.add_phi_incoming(ic, b.i1(false), n.inner_body);
  b.set_block(n.outer_latch);
  b.br(n.outer_header);
  b.add_phi_incoming(oc, b.i1(false), n.outer_latch);
  b.set_block(n.exit);
  b.ret();
  b.end_function();
  return n;
}

// A loop with a break: the body can leave through a second exit block,
// so the function has two ret blocks (multi-exit CFG).
struct MultiExit {
  Module m;
  uint32_t entry, header, body, latch, exit_normal, exit_break;
};

MultiExit make_multi_exit() {
  MultiExit x;
  IRBuilder b(x.m);
  b.begin_function("f", {Type::i1()}, Type::void_());
  x.entry = b.block("entry");
  x.header = b.block("header");
  x.body = b.block("body");
  x.latch = b.block("latch");
  x.exit_normal = b.block("exit.normal");
  x.exit_break = b.block("exit.break");
  b.set_block(x.entry);
  b.br(x.header);
  b.set_block(x.header);
  const Value c = b.phi(Type::i1());
  b.add_phi_incoming(c, b.i1(true), x.entry);
  b.cond_br(c, x.body, x.exit_normal);
  b.set_block(x.body);
  b.cond_br(b.arg(0), x.latch, x.exit_break);
  b.set_block(x.latch);
  b.br(x.header);
  b.add_phi_incoming(c, b.i1(false), x.latch);
  b.set_block(x.exit_normal);
  b.ret();
  b.set_block(x.exit_break);
  b.ret();
  b.end_function();
  return x;
}

TEST(CFG, DiamondEdges) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  EXPECT_EQ(cfg.succs(d.entry).size(), 2u);
  EXPECT_EQ(cfg.preds(d.join).size(), 2u);
  EXPECT_EQ(cfg.succs(d.join).size(), 0u);
  ASSERT_EQ(cfg.exit_blocks().size(), 1u);
  EXPECT_EQ(cfg.exit_blocks()[0], d.join);
}

TEST(CFG, RpoVisitsEntryFirst) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  ASSERT_EQ(cfg.rpo().size(), 4u);
  EXPECT_EQ(cfg.rpo()[0], d.entry);
  EXPECT_EQ(cfg.rpo().back(), d.join);
  for (uint32_t bb = 0; bb < 4; ++bb) EXPECT_TRUE(cfg.reachable(bb));
}

TEST(CFG, UnreachableBlockDetected) {
  auto d = make_diamond();
  IRBuilder b(d.m);
  // Append a dangling block by hand.
  auto& f = d.m.functions[0];
  const auto dead = f.add_block("dead");
  ir::Instruction ret;
  ret.op = ir::Opcode::Ret;
  f.append(dead, ret);
  const CFG cfg(f);
  EXPECT_FALSE(cfg.reachable(dead));
}

TEST(Dominators, Diamond) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  EXPECT_EQ(dom.idom(d.left), d.entry);
  EXPECT_EQ(dom.idom(d.right), d.entry);
  EXPECT_EQ(dom.idom(d.join), d.entry);
  EXPECT_TRUE(dom.dominates(d.entry, d.join));
  EXPECT_FALSE(dom.dominates(d.left, d.join));
  EXPECT_TRUE(dom.dominates(d.join, d.join));  // reflexive
}

TEST(Dominators, PostDominatorsDiamond) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  EXPECT_TRUE(pdom.dominates(d.join, d.entry));
  EXPECT_TRUE(pdom.dominates(d.join, d.left));
  EXPECT_FALSE(pdom.dominates(d.left, d.entry));
  EXPECT_EQ(pdom.idom(d.left), d.join);
}

TEST(Dominators, LoopHeaderDominatesBody) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  EXPECT_TRUE(dom.dominates(l.header, l.body));
  EXPECT_TRUE(dom.dominates(l.header, l.exit));
  EXPECT_FALSE(dom.dominates(l.body, l.exit));
}

TEST(Loops, DetectsNaturalLoop) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  ASSERT_EQ(loops.loops().size(), 1u);
  const auto& loop = loops.loops()[0];
  EXPECT_EQ(loop.header, l.header);
  ASSERT_EQ(loop.latches.size(), 1u);
  EXPECT_EQ(loop.latches[0], l.body);
  EXPECT_TRUE(loops.is_back_edge(l.body, l.header));
  EXPECT_FALSE(loops.is_back_edge(l.entry, l.header));
}

TEST(Loops, ExitingBranchIsLoopTerminating) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  // header's branch has one successor outside the loop.
  EXPECT_NE(loops.exiting_loop(l.header, {l.body, l.exit}), ~0u);
  // body's branch (unconditional to header) stays inside.
  EXPECT_EQ(loops.exiting_loop(l.body, {l.header}), ~0u);
}

TEST(Loops, NoLoopInDiamond) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  EXPECT_TRUE(loops.loops().empty());
}

TEST(Loops, NestedLoopsInnermost) {
  const auto n = make_nested_loops();
  const CFG cfg(n.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  ASSERT_EQ(loops.loops().size(), 2u);
  // The inner body's innermost loop is the smaller one.
  const auto inner = loops.innermost_loop(n.inner_body);
  ASSERT_NE(inner, ~0u);
  EXPECT_EQ(loops.loops()[inner].header, n.inner_header);
  EXPECT_EQ(loops.loops_containing(n.inner_body).size(), 2u);
  EXPECT_EQ(loops.loops_containing(n.outer_latch).size(), 1u);
}

TEST(Loops, NestedLoopExitsTargetTheRightLoop) {
  const auto n = make_nested_loops();
  const CFG cfg(n.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  // The inner header's branch leaves the inner loop only (to the outer
  // latch); the outer header's branch leaves the outer loop.
  EXPECT_NE(loops.exiting_loop(n.inner_header,
                               {n.inner_body, n.outer_latch}),
            ~0u);
  EXPECT_NE(loops.exiting_loop(n.outer_header, {n.inner_header, n.exit}),
            ~0u);
  // The outer latch's unconditional branch stays inside the outer loop.
  EXPECT_EQ(loops.exiting_loop(n.outer_latch, {n.outer_header}), ~0u);
  EXPECT_TRUE(loops.is_back_edge(n.inner_body, n.inner_header));
  EXPECT_TRUE(loops.is_back_edge(n.outer_latch, n.outer_header));
  EXPECT_FALSE(loops.is_back_edge(n.inner_header, n.outer_latch));
}

TEST(Loops, MultiExitLoopHasBothExitingBlocks) {
  const auto x = make_multi_exit();
  const CFG cfg(x.m.functions[0]);
  ASSERT_EQ(cfg.exit_blocks().size(), 2u);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  ASSERT_EQ(loops.loops().size(), 1u);
  // Both the header and the breaking body exit the same loop.
  EXPECT_NE(loops.exiting_loop(x.header, {x.body, x.exit_normal}), ~0u);
  EXPECT_NE(loops.exiting_loop(x.body, {x.latch, x.exit_break}), ~0u);
  EXPECT_EQ(loops.exiting_loop(x.latch, {x.header}), ~0u);
  EXPECT_EQ(loops.innermost_loop(x.exit_break), ~0u);
}

TEST(ControlDependence, DiamondArms) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  const ControlDependence cd(cfg, pdom);
  const auto on_true = cd.dependent_on_edge(d.entry, d.left);
  const auto on_false = cd.dependent_on_edge(d.entry, d.right);
  EXPECT_EQ(on_true, std::vector<uint32_t>{d.left});
  EXPECT_EQ(on_false, std::vector<uint32_t>{d.right});
  const auto all = cd.dependent_on_branch(d.entry);
  EXPECT_EQ(all.size(), 2u);
  // join post-dominates the branch: not control-dependent.
  EXPECT_EQ(std::find(all.begin(), all.end(), d.join), all.end());
}

TEST(ControlDependence, LoopBodyDependsOnHeaderBranch) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  const ControlDependence cd(cfg, pdom);
  const auto deps = cd.dependent_on_branch(l.header);
  EXPECT_NE(std::find(deps.begin(), deps.end(), l.body), deps.end());
  // The header controls its own re-execution.
  EXPECT_NE(std::find(deps.begin(), deps.end(), l.header), deps.end());
  EXPECT_EQ(std::find(deps.begin(), deps.end(), l.exit), deps.end());
}

TEST(ControlDependence, NestedLoopBodyDependsOnBothHeaders) {
  const auto n = make_nested_loops();
  const CFG cfg(n.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  const ControlDependence cd(cfg, pdom);
  const auto contains = [](const std::vector<uint32_t>& v, uint32_t bb) {
    return std::find(v.begin(), v.end(), bb) != v.end();
  };
  // The inner body is (directly) control-dependent on the inner header
  // only; the outer header decides the inner HEADER and the latch, and
  // the dependence on the body is transitive, not direct (Ferrante CD).
  EXPECT_TRUE(contains(cd.dependent_on_branch(n.inner_header), n.inner_body));
  EXPECT_TRUE(contains(cd.dependent_on_branch(n.inner_header),
                       n.inner_header));  // self: loop re-execution
  EXPECT_FALSE(contains(cd.dependent_on_branch(n.outer_header), n.inner_body));
  EXPECT_TRUE(contains(cd.dependent_on_branch(n.outer_header), n.inner_header));
  EXPECT_TRUE(contains(cd.dependent_on_branch(n.outer_header), n.outer_latch));
  // The exit post-dominates everything: dependent on no branch.
  EXPECT_FALSE(contains(cd.dependent_on_branch(n.outer_header), n.exit));
  EXPECT_FALSE(contains(cd.dependent_on_branch(n.inner_header), n.exit));
}

TEST(ControlDependence, MultiExitBreakSplitsDependence) {
  const auto x = make_multi_exit();
  const CFG cfg(x.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  const ControlDependence cd(cfg, pdom);
  const auto contains = [](const std::vector<uint32_t>& v, uint32_t bb) {
    return std::find(v.begin(), v.end(), bb) != v.end();
  };
  // With two rets neither exit post-dominates the branches that reach
  // it, so BOTH exits are control-dependent on the header and body
  // branches.
  EXPECT_TRUE(contains(cd.dependent_on_branch(x.header), x.exit_normal));
  EXPECT_TRUE(contains(cd.dependent_on_branch(x.body), x.exit_break));
  EXPECT_TRUE(contains(cd.dependent_on_branch(x.body), x.latch));
  // The break decision cannot influence whether the body itself ran.
  EXPECT_FALSE(contains(cd.dependent_on_branch(x.body), x.body));
}

TEST(DefUse, TracksUsers) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.arg(0), b.i32(1));
  const Value y = b.mul(x, x);
  b.ret(y);
  b.end_function();

  const DefUse du(m.functions[0]);
  const auto& uses = du.users_of_inst(x.index);
  ASSERT_EQ(uses.size(), 2u);  // both operands of the mul
  EXPECT_EQ(uses[0].user, y.index);
  EXPECT_EQ(uses[0].operand, 0u);
  EXPECT_EQ(uses[1].operand, 1u);
  const auto& arg_uses = du.users_of_arg(0);
  ASSERT_EQ(arg_uses.size(), 1u);
  EXPECT_EQ(arg_uses[0].user, x.index);
}

TEST(CallGraph, TracksCallSites) {
  Module m;
  IRBuilder b(m);
  const auto callee = b.begin_function("callee", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.ret();
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.call(callee, {});
  b.call(callee, {});
  b.ret();
  b.end_function();

  const CallGraph cg(m);
  EXPECT_EQ(cg.callers_of(callee).size(), 2u);
  EXPECT_EQ(cg.callers_of(1).size(), 0u);  // nobody calls main
  EXPECT_EQ(cg.callers_of(callee)[0].caller, 1u);
}

}  // namespace
}  // namespace trident::analysis
