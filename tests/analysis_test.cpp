#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/control_dependence.h"
#include "analysis/def_use.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "ir/builder.h"

namespace trident::analysis {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Diamond: entry -> {left, right} -> join -> exit(ret).
struct Diamond {
  Module m;
  uint32_t entry, left, right, join;
};

Diamond make_diamond() {
  Diamond d;
  IRBuilder b(d.m);
  b.begin_function("f", {Type::i1()}, Type::void_());
  d.entry = b.block("entry");
  d.left = b.block("left");
  d.right = b.block("right");
  d.join = b.block("join");
  b.set_block(d.entry);
  b.cond_br(b.arg(0), d.left, d.right);
  b.set_block(d.left);
  b.br(d.join);
  b.set_block(d.right);
  b.br(d.join);
  b.set_block(d.join);
  b.ret();
  b.end_function();
  return d;
}

// Loop: entry -> header; header -> {body, exit}; body -> header.
struct LoopCfg {
  Module m;
  uint32_t entry, header, body, exit;
};

LoopCfg make_loop() {
  LoopCfg l;
  IRBuilder b(l.m);
  b.begin_function("f", {}, Type::void_());
  l.entry = b.block("entry");
  l.header = b.block("header");
  l.body = b.block("body");
  l.exit = b.block("exit");
  b.set_block(l.entry);
  b.br(l.header);
  b.set_block(l.header);
  const Value iv = b.phi(Type::i32(), "iv");
  b.add_phi_incoming(iv, b.i32(0), l.entry);
  const Value c = b.icmp(CmpPred::SLt, iv, b.i32(10));
  b.cond_br(c, l.body, l.exit);
  b.set_block(l.body);
  const Value next = b.add(iv, b.i32(1));
  b.br(l.header);
  b.add_phi_incoming(iv, next, l.body);
  b.set_block(l.exit);
  b.ret();
  b.end_function();
  return l;
}

TEST(CFG, DiamondEdges) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  EXPECT_EQ(cfg.succs(d.entry).size(), 2u);
  EXPECT_EQ(cfg.preds(d.join).size(), 2u);
  EXPECT_EQ(cfg.succs(d.join).size(), 0u);
  ASSERT_EQ(cfg.exit_blocks().size(), 1u);
  EXPECT_EQ(cfg.exit_blocks()[0], d.join);
}

TEST(CFG, RpoVisitsEntryFirst) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  ASSERT_EQ(cfg.rpo().size(), 4u);
  EXPECT_EQ(cfg.rpo()[0], d.entry);
  EXPECT_EQ(cfg.rpo().back(), d.join);
  for (uint32_t bb = 0; bb < 4; ++bb) EXPECT_TRUE(cfg.reachable(bb));
}

TEST(CFG, UnreachableBlockDetected) {
  auto d = make_diamond();
  IRBuilder b(d.m);
  // Append a dangling block by hand.
  auto& f = d.m.functions[0];
  const auto dead = f.add_block("dead");
  ir::Instruction ret;
  ret.op = ir::Opcode::Ret;
  f.append(dead, ret);
  const CFG cfg(f);
  EXPECT_FALSE(cfg.reachable(dead));
}

TEST(Dominators, Diamond) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  EXPECT_EQ(dom.idom(d.left), d.entry);
  EXPECT_EQ(dom.idom(d.right), d.entry);
  EXPECT_EQ(dom.idom(d.join), d.entry);
  EXPECT_TRUE(dom.dominates(d.entry, d.join));
  EXPECT_FALSE(dom.dominates(d.left, d.join));
  EXPECT_TRUE(dom.dominates(d.join, d.join));  // reflexive
}

TEST(Dominators, PostDominatorsDiamond) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  EXPECT_TRUE(pdom.dominates(d.join, d.entry));
  EXPECT_TRUE(pdom.dominates(d.join, d.left));
  EXPECT_FALSE(pdom.dominates(d.left, d.entry));
  EXPECT_EQ(pdom.idom(d.left), d.join);
}

TEST(Dominators, LoopHeaderDominatesBody) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  EXPECT_TRUE(dom.dominates(l.header, l.body));
  EXPECT_TRUE(dom.dominates(l.header, l.exit));
  EXPECT_FALSE(dom.dominates(l.body, l.exit));
}

TEST(Loops, DetectsNaturalLoop) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  ASSERT_EQ(loops.loops().size(), 1u);
  const auto& loop = loops.loops()[0];
  EXPECT_EQ(loop.header, l.header);
  ASSERT_EQ(loop.latches.size(), 1u);
  EXPECT_EQ(loop.latches[0], l.body);
  EXPECT_TRUE(loops.is_back_edge(l.body, l.header));
  EXPECT_FALSE(loops.is_back_edge(l.entry, l.header));
}

TEST(Loops, ExitingBranchIsLoopTerminating) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  // header's branch has one successor outside the loop.
  EXPECT_NE(loops.exiting_loop(l.header, {l.body, l.exit}), ~0u);
  // body's branch (unconditional to header) stays inside.
  EXPECT_EQ(loops.exiting_loop(l.body, {l.header}), ~0u);
}

TEST(Loops, NoLoopInDiamond) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  EXPECT_TRUE(loops.loops().empty());
}

TEST(Loops, NestedLoopsInnermost) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto oh = b.block("outer.header");
  const auto ih = b.block("inner.header");
  const auto ib = b.block("inner.body");
  const auto ol = b.block("outer.latch");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(oh);
  b.set_block(oh);
  const Value oc = b.phi(Type::i1());
  b.add_phi_incoming(oc, b.i1(true), entry);
  b.cond_br(oc, ih, exit);
  b.set_block(ih);
  const Value ic = b.phi(Type::i1());
  b.add_phi_incoming(ic, b.i1(true), oh);
  b.cond_br(ic, ib, ol);
  b.set_block(ib);
  b.br(ih);
  b.add_phi_incoming(ic, b.i1(false), ib);
  b.set_block(ol);
  b.br(oh);
  b.add_phi_incoming(oc, b.i1(false), ol);
  b.set_block(exit);
  b.ret();
  b.end_function();

  const CFG cfg(m.functions[0]);
  const auto dom = DomTree::dominators(cfg);
  const LoopInfo loops(cfg, dom);
  ASSERT_EQ(loops.loops().size(), 2u);
  // The inner body's innermost loop is the smaller one.
  const auto inner = loops.innermost_loop(ib);
  ASSERT_NE(inner, ~0u);
  EXPECT_EQ(loops.loops()[inner].header, ih);
  EXPECT_EQ(loops.loops_containing(ib).size(), 2u);
  EXPECT_EQ(loops.loops_containing(ol).size(), 1u);
}

TEST(ControlDependence, DiamondArms) {
  const auto d = make_diamond();
  const CFG cfg(d.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  const ControlDependence cd(cfg, pdom);
  const auto on_true = cd.dependent_on_edge(d.entry, d.left);
  const auto on_false = cd.dependent_on_edge(d.entry, d.right);
  EXPECT_EQ(on_true, std::vector<uint32_t>{d.left});
  EXPECT_EQ(on_false, std::vector<uint32_t>{d.right});
  const auto all = cd.dependent_on_branch(d.entry);
  EXPECT_EQ(all.size(), 2u);
  // join post-dominates the branch: not control-dependent.
  EXPECT_EQ(std::find(all.begin(), all.end(), d.join), all.end());
}

TEST(ControlDependence, LoopBodyDependsOnHeaderBranch) {
  const auto l = make_loop();
  const CFG cfg(l.m.functions[0]);
  const auto pdom = DomTree::post_dominators(cfg);
  const ControlDependence cd(cfg, pdom);
  const auto deps = cd.dependent_on_branch(l.header);
  EXPECT_NE(std::find(deps.begin(), deps.end(), l.body), deps.end());
  // The header controls its own re-execution.
  EXPECT_NE(std::find(deps.begin(), deps.end(), l.header), deps.end());
  EXPECT_EQ(std::find(deps.begin(), deps.end(), l.exit), deps.end());
}

TEST(DefUse, TracksUsers) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.arg(0), b.i32(1));
  const Value y = b.mul(x, x);
  b.ret(y);
  b.end_function();

  const DefUse du(m.functions[0]);
  const auto& uses = du.users_of_inst(x.index);
  ASSERT_EQ(uses.size(), 2u);  // both operands of the mul
  EXPECT_EQ(uses[0].user, y.index);
  EXPECT_EQ(uses[0].operand, 0u);
  EXPECT_EQ(uses[1].operand, 1u);
  const auto& arg_uses = du.users_of_arg(0);
  ASSERT_EQ(arg_uses.size(), 1u);
  EXPECT_EQ(arg_uses[0].user, x.index);
}

TEST(CallGraph, TracksCallSites) {
  Module m;
  IRBuilder b(m);
  const auto callee = b.begin_function("callee", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.ret();
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.call(callee, {});
  b.call(callee, {});
  b.ret();
  b.end_function();

  const CallGraph cg(m);
  EXPECT_EQ(cg.callers_of(callee).size(), 2u);
  EXPECT_EQ(cg.callers_of(1).size(), 0u);  // nobody calls main
  EXPECT_EQ(cg.callers_of(callee)[0].caller, 1u);
}

}  // namespace
}  // namespace trident::analysis
