// Snapshot-and-resume trial execution: interpreter snapshots must resume
// bit-identically to running straight through, campaigns with snapshots
// enabled must produce byte-identical CampaignResults to snapshots-off
// at any thread count and across checkpoint resume, and the memory
// fast paths (one-entry segment cache, bulk memcpy) must preserve exact
// crash and overlap semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fi/campaign.h"
#include "fi/injector.h"
#include "fi/trial_runner.h"
#include "interp/interpreter.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "support/rng.h"
#include "workloads/common.h"

namespace trident {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// A module with enough state to make snapshot bugs visible: initialized
// globals, a helper call, allocas, a memcpy, data-dependent branches and
// output spread across the whole run.
Module make_stateful() {
  Module m;
  const auto gt = m.add_global({"table", 32 * 4, {}});
  const auto gs = m.add_global({"shadow", 32 * 4, {}});
  IRBuilder b(m);

  const auto mix = b.begin_function("mix", {Type::i64()}, Type::i64());
  b.set_block(b.block("entry"));
  const Value x = b.arg(0);
  const Value h =
      b.mul(b.xor_(x, b.lshr(x, b.i64(3))), b.i64(2654435761ull));
  b.ret(b.urem(h, b.i64(1000003)));
  b.end_function();

  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value t = b.global(gt);
  workloads::lcg_fill_i32(b, t, 32, 7, 977);
  b.memcpy_(b.global(gs), t, 32 * 4);
  const Value acc = b.alloca_(8, "acc");
  b.store(b.i64(1), acc);
  workloads::counted_loop(b, 0, 40, 1, [&](Value i) {
    const Value idx = b.urem(i, b.i32(32));
    const Value cell = b.gep(b.global(gs), idx, 4);
    const Value v = b.zext(b.load(Type::i32(), cell), Type::i64());
    const Value a0 = b.load(Type::i64(), acc);
    const Value a1 = b.call(mix, {b.add(a0, v)});
    b.store(a1, acc);
    b.store(b.trunc(a1, Type::i32()), cell);
    workloads::if_then(b, b.icmp(ir::CmpPred::Eq, b.urem(i, b.i32(8)),
                                 b.i32(0)),
                       [&] { b.print_uint(b.load(Type::i64(), acc)); });
  });
  b.print_uint(b.load(Type::i64(), acc));
  b.ret();
  b.end_function();
  return m;
}

void expect_same_run(const interp::RunResult& a, const interp::RunResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.debug_output, b.debug_output);
  EXPECT_EQ(a.dynamic_insts, b.dynamic_insts);
  EXPECT_EQ(a.dynamic_results, b.dynamic_results);
  EXPECT_EQ(a.ret_raw, b.ret_raw);
  EXPECT_EQ(a.crash_reason, b.crash_reason);
}

void expect_identical(const fi::CampaignResult& a,
                      const fi::CampaignResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.hang, b.hang);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.fuel_exhausted, b.fuel_exhausted);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target) << "slot " << i;
    EXPECT_EQ(a.trials[i].bit, b.trials[i].bit) << "slot " << i;
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "slot " << i;
    EXPECT_EQ(a.trials[i].fuel_exhausted, b.trials[i].fuel_exhausted)
        << "slot " << i;
  }
}

TEST(InterpSnapshot, ResumeIsBitIdenticalFromEveryCapturedBoundary) {
  const auto m = make_stateful();
  interp::Interpreter golden(m);
  const auto reference = golden.run_main({});
  ASSERT_EQ(reference.outcome, interp::Outcome::Ok) << reference.crash_reason;
  ASSERT_GT(reference.dynamic_results, 100u);

  std::vector<interp::Snapshot> snapshots;
  interp::RunOptions recording;
  recording.snapshot_interval = 17;
  recording.snapshots = &snapshots;
  interp::Interpreter recorder(m);
  expect_same_run(recorder.run_main(recording), reference);
  ASSERT_GT(snapshots.size(), 3u);

  interp::Interpreter resumer(m);
  for (const auto& s : snapshots) {
    EXPECT_LE(s.dyn_results, reference.dynamic_results);
    expect_same_run(resumer.resume(s, {}), reference);
  }
  // A snapshot is not consumed: resuming from the same one again, with a
  // dirty interpreter, is still exact.
  expect_same_run(resumer.resume(snapshots.front(), {}), reference);
}

TEST(InterpSnapshot, PristineSnapshotCapturesConstructedState) {
  const auto m = make_stateful();
  interp::Interpreter interp(m);
  const auto pristine = interp.snapshot();
  EXPECT_EQ(pristine.dyn_insts, 0u);
  EXPECT_TRUE(pristine.stack.empty());
  EXPECT_TRUE(pristine.output.empty());
  EXPECT_EQ(pristine.memory.bytes_live(), interp.memory().bytes_live());
  EXPECT_EQ(pristine.global_bases.size(), m.globals.size());
  EXPECT_GT(pristine.bytes(), pristine.memory.bytes_live());
  // An empty frame stack means "nothing left to execute": resuming it
  // completes immediately without running any instruction.
  const auto resumed = interp.resume(pristine, {});
  EXPECT_EQ(resumed.outcome, interp::Outcome::Ok);
  EXPECT_EQ(resumed.dynamic_insts, 0u);
  EXPECT_TRUE(resumed.output.empty());
}

// Regression for the double global materialization: state must be fully
// usable right after construction (globals live and initialized, bases
// valid), and the first run() must not depend on a redundant reset.
TEST(InterpSnapshot, GlobalsAreMaterializedOnceAtConstruction) {
  const auto m = make_stateful();
  interp::Interpreter interp(m);
  EXPECT_EQ(interp.memory().bytes_live(), 32u * 4 + 32u * 4);
  EXPECT_EQ(interp.memory().segment_count(), 2u);
  uint64_t probe = 0;
  EXPECT_TRUE(interp.memory().load(interp.global_base(0), 4, probe));
  EXPECT_NE(interp.global_base(0), interp.global_base(1));

  // First run, and a second run over the dirtied state, both match a
  // fresh interpreter.
  const auto first = interp.run_main({});
  const auto second = interp.run_main({});
  expect_same_run(first, second);
  expect_same_run(first, interp::Interpreter(m).run_main({}));
}

TEST(InterpSnapshot, ResumedInjectionMatchesScratchInjection) {
  const auto m = make_stateful();
  interp::Interpreter golden(m);
  const auto reference = golden.run_main({});

  std::vector<interp::Snapshot> snapshots;
  interp::RunOptions recording;
  recording.snapshot_interval = 23;
  recording.snapshots = &snapshots;
  interp::Interpreter(m).run_main(recording);
  ASSERT_FALSE(snapshots.empty());

  auto rng = support::Rng::stream(5150, 0);
  for (int k = 0; k < 40; ++k) {
    fi::InjectionSite site;
    site.mode = fi::InjectionSite::Mode::DynIndex;
    site.dyn_index = rng.next_below(reference.dynamic_results);
    site.bit_entropy = rng.next_u64();

    fi::Injector scratch_inj(m, site);
    interp::RunOptions scratch_opts;
    scratch_opts.hooks = &scratch_inj;
    interp::Interpreter scratch(m);
    const auto want = scratch.run_main(scratch_opts);

    const interp::Snapshot* snap = nullptr;
    for (const auto& s : snapshots) {
      if (s.dyn_results <= site.dyn_index) snap = &s;
    }
    if (snap == nullptr) continue;
    fi::Injector resumed_inj(m, site);
    interp::RunOptions resumed_opts;
    resumed_opts.hooks = &resumed_inj;
    interp::Interpreter resumer(m);
    expect_same_run(resumer.resume(*snap, resumed_opts), want);
    EXPECT_EQ(resumed_inj.target(), scratch_inj.target()) << "site " << k;
    EXPECT_EQ(resumed_inj.bit(), scratch_inj.bit()) << "site " << k;
  }
}

TEST(CampaignSnapshots, RandomIntervalsAreBitIdenticalToSnapshotsOff) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);

  fi::CampaignOptions off;
  off.trials = 120;
  off.seed = 33;
  off.threads = 1;
  off.max_snapshots = 0;
  const auto reference = fi::run_overall_campaign(m, profile, off);
  ASSERT_EQ(reference.total(), 120u);

  auto rng = support::Rng::stream(404, 0);
  for (int round = 0; round < 6; ++round) {
    const uint64_t max_snapshots = 1 + rng.next_below(97);
    for (const uint32_t threads : {1u, 8u}) {
      auto on = off;
      on.max_snapshots = max_snapshots;
      on.threads = threads;
      obs::Registry metrics;
      on.metrics = &metrics;
      const auto got = fi::run_overall_campaign(m, profile, on);
      expect_identical(got, reference);
      EXPECT_GT(metrics.counter("fi.snapshot_count"), 0u)
          << "max_snapshots " << max_snapshots;
      EXPECT_GT(metrics.counter("fi.snapshot_resumed_trials"), 0u);
      EXPECT_GT(metrics.counter("fi.snapshot_skipped_insts"), 0u);
      EXPECT_LE(metrics.counter("fi.snapshot_count"), max_snapshots);
    }
  }
}

TEST(CampaignSnapshots, InstructionCampaignIsBitIdenticalToSnapshotsOff) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);
  // A store in the main loop body: many dynamic occurrences.
  ir::InstRef target;
  uint64_t best = 0;
  const auto& main_fn = m.functions.back();
  for (uint32_t i = 0; i < main_fn.num_insts(); ++i) {
    const ir::InstRef ref{static_cast<uint32_t>(m.functions.size() - 1), i};
    if (main_fn.inst(i).has_result() && profile.exec(ref) > best) {
      best = profile.exec(ref);
      target = ref;
    }
  }
  ASSERT_GT(best, 10u);

  fi::CampaignOptions off;
  off.trials = 100;
  off.seed = 77;
  off.threads = 1;
  off.max_snapshots = 0;
  const auto reference = fi::run_instruction_campaign(m, profile, target, off);

  for (const uint32_t threads : {1u, 8u}) {
    auto on = off;
    on.max_snapshots = 16;
    on.threads = threads;
    obs::Registry metrics;
    on.metrics = &metrics;
    const auto got = fi::run_instruction_campaign(m, profile, target, on);
    expect_identical(got, reference);
    EXPECT_GT(metrics.counter("fi.snapshot_resumed_trials"), 0u);
  }
}

TEST(CampaignSnapshots, ByteBudgetThinsWithinBudgetAndStaysExact) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);

  fi::CampaignOptions off;
  off.trials = 80;
  off.seed = 55;
  off.threads = 1;
  off.max_snapshots = 0;
  const auto reference = fi::run_overall_campaign(m, profile, off);

  // Generous, tight (forces thinning), and impossible (drops every
  // snapshot) budgets: all bit-identical, all within budget.
  interp::Interpreter probe(m);
  const uint64_t one_snapshot = probe.snapshot().bytes();
  for (const uint64_t budget :
       {uint64_t{256} << 20, one_snapshot * 3, uint64_t{1}}) {
    auto on = off;
    on.max_snapshots = 64;
    on.snapshot_bytes_budget = budget;
    obs::Registry metrics;
    on.metrics = &metrics;
    expect_identical(fi::run_overall_campaign(m, profile, on), reference);
    EXPECT_LE(metrics.counter("fi.snapshot_bytes"), budget);
  }
}

std::string tmp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

std::vector<std::string> lines_of(const std::string& content) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (true) {
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

TEST(CampaignSnapshots, ComposesWithCheckpointResumeAcrossIntervals) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);

  fi::CampaignOptions off;
  off.trials = 90;
  off.seed = 13;
  off.threads = 1;
  off.max_snapshots = 0;
  const auto reference = fi::run_overall_campaign(m, profile, off);

  // Full checkpointed run with one snapshot interval, "killed" after 31
  // trials, resumed with a different interval (and thread count): the
  // merged result must match the snapshots-off, checkpoint-free run.
  const std::string full_path = tmp_path("snap_ckpt_full.jsonl");
  auto first = off;
  first.max_snapshots = 32;
  first.checkpoint_path = full_path;
  fi::run_overall_campaign(m, profile, first);
  const auto lines = lines_of(read_file(full_path));
  ASSERT_EQ(lines.size(), 1 + off.trials);

  std::string cut;
  for (size_t i = 0; i < 1 + 31; ++i) cut += lines[i] + "\n";
  for (const uint64_t resumed_snapshots : {uint64_t{0}, uint64_t{5}}) {
    for (const uint32_t threads : {1u, 8u}) {
      const std::string path = tmp_path("snap_ckpt_cut.jsonl");
      write_file(path, cut);
      auto resume = off;
      resume.max_snapshots = resumed_snapshots;
      resume.threads = threads;
      resume.checkpoint_path = path;
      const auto merged = fi::run_overall_campaign(m, profile, resume);
      EXPECT_EQ(merged.resumed, 31u);
      expect_identical(merged, reference);
    }
  }
}

TEST(MemoryCache, HitsMissesAndFreeInvalidation) {
  interp::Memory mem;
  const uint64_t a = mem.allocate(64);
  const uint64_t b = mem.allocate(64);
  uint64_t v = 0;

  ASSERT_TRUE(mem.load(a, 8, v));  // miss: fills the cache
  ASSERT_TRUE(mem.load(a + 8, 8, v));
  ASSERT_TRUE(mem.load(a + 56, 8, v));
  EXPECT_EQ(mem.cache_lookups(), 3u);
  EXPECT_EQ(mem.cache_hits(), 2u);

  ASSERT_TRUE(mem.load(b, 8, v));      // different segment: miss
  ASSERT_TRUE(mem.store(b + 8, 8, 1));  // hit
  EXPECT_EQ(mem.cache_hits(), 3u);

  // An address below the cached base must not hit (unsigned wrap check).
  ASSERT_TRUE(mem.load(a, 8, v));
  EXPECT_EQ(mem.cache_lookups(), 6u);
  EXPECT_EQ(mem.cache_hits(), 3u);

  // Freeing the cached segment invalidates the cache: the stale entry
  // must not satisfy lookups for the dead range.
  ASSERT_TRUE(mem.load(b, 8, v));  // cache b
  mem.free(b);
  EXPECT_FALSE(mem.load(b, 8, v));
  EXPECT_FALSE(mem.valid(b, 1));
  ASSERT_TRUE(mem.load(a, 8, v));  // a still fine

  // Copy semantics: a copy starts stats at zero; copy-assignment keeps
  // the assignee's tallies (per-worker hit rates stay coherent across
  // snapshot restores).
  interp::Memory copy(mem);
  EXPECT_EQ(copy.cache_lookups(), 0u);
  EXPECT_EQ(copy.bytes_live(), mem.bytes_live());
  const uint64_t before = mem.cache_lookups();
  mem = copy;
  EXPECT_EQ(mem.cache_lookups(), before);
  ASSERT_TRUE(mem.load(a, 8, v));
  EXPECT_EQ(mem.cache_lookups(), before + 1);
}

TEST(MemoryCache, SpanExposesContiguousRange) {
  interp::Memory mem;
  const uint64_t a = mem.allocate(32);
  ASSERT_TRUE(mem.store(a + 4, 4, 0xdeadbeef));
  const uint8_t* p = nullptr;
  EXPECT_EQ(mem.span(a, &p), 32u);
  EXPECT_EQ(mem.span(a + 30, &p), 2u);
  EXPECT_EQ(mem.span(a + 32, &p), 0u);
  EXPECT_EQ(mem.span(a - 1, &p), 0u);
  ASSERT_EQ(mem.span(a + 4, &p), 28u);
  EXPECT_EQ(p[0], 0xef);
  EXPECT_EQ(p[3], 0xde);
}

// Bulk memcpy must keep the per-byte semantics: forward copy order (an
// overlapping dst > src copy replicates), bytes before the first fault
// committed, and the exact crash reason/address of the first OOB byte.
TEST(MemcpyBulk, OverlappingForwardCopyReplicates) {
  Module m;
  const auto ga = m.add_global({"a", 16, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value base = b.global(ga);
  b.store(b.i8(1), base);
  b.store(b.i8(2), b.gep(base, b.i32(1), 1));
  // dst = a+2 overlaps src = a: forward byte order replicates the first
  // two bytes across the rest of the buffer.
  b.memcpy_(b.gep(base, b.i32(2), 1), base, 14);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.print_uint(b.zext(b.load(Type::i8(), b.gep(base, i, 1)), Type::i64()));
  });
  b.ret();
  b.end_function();
  const auto res = interp::Interpreter(m).run_main({});
  ASSERT_EQ(res.outcome, interp::Outcome::Ok) << res.crash_reason;
  std::string want;
  for (int i = 0; i < 16; ++i) want += (i % 2 == 0) ? "1\n" : "2\n";
  EXPECT_EQ(res.output, want);
}

TEST(MemcpyBulk, CrashReportsFirstOutOfBoundsByteAndKeepsPrefix) {
  // src has 8 valid bytes, dst 16: the copy must commit exactly 8 bytes
  // and crash naming the first unreadable source byte.
  Module m;
  const auto gsrc = m.add_global({"src", 8, {}});
  const auto gdst = m.add_global({"dst", 16, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  workloads::counted_loop(b, 0, 8, 1, [&](Value i) {
    b.store(b.trunc(b.add(i, b.i32(10)), Type::i8()),
            b.gep(b.global(gsrc), i, 1));
  });
  b.memcpy_(b.global(gdst), b.global(gsrc), 16);
  b.ret();
  b.end_function();

  interp::Interpreter interp(m);
  const uint64_t src_base = interp.global_base(0);
  const uint64_t dst_base = interp.global_base(1);
  const auto res = interp.run_main({});
  ASSERT_EQ(res.outcome, interp::Outcome::Crash);
  char expect_addr[64];
  std::snprintf(expect_addr, sizeof expect_addr,
                "out-of-bounds memcpy read at 0x%llx",
                static_cast<unsigned long long>(src_base + 8));
  EXPECT_NE(res.crash_reason.find(expect_addr), std::string::npos)
      << res.crash_reason;
  // The 8 in-bounds bytes were committed before the fault.
  for (uint64_t i = 0; i < 8; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(interp.memory().load(dst_base + i, 1, v));
    EXPECT_EQ(v, 10 + i) << "byte " << i;
  }
}

TEST(MemcpyBulk, CrashReportsFirstUnwritableByte) {
  // dst shorter than src: fault is a write, at dst_base + dst_size.
  Module m;
  const auto gsrc = m.add_global({"src", 16, {}});
  const auto gdst = m.add_global({"dst", 8, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.memcpy_(b.global(gdst), b.global(gsrc), 16);
  b.ret();
  b.end_function();

  interp::Interpreter interp(m);
  const uint64_t dst_base = interp.global_base(1);
  const auto res = interp.run_main({});
  ASSERT_EQ(res.outcome, interp::Outcome::Crash);
  char expect_addr[64];
  std::snprintf(expect_addr, sizeof expect_addr,
                "out-of-bounds memcpy write at 0x%llx",
                static_cast<unsigned long long>(dst_base + 8));
  EXPECT_NE(res.crash_reason.find(expect_addr), std::string::npos)
      << res.crash_reason;
}

}  // namespace
}  // namespace trident
