#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "workloads/workloads.h"

namespace trident::ir {
namespace {

// Minimal well-formed module the negative tests then break.
Module valid_module() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(1), p);
  const Value v = b.load(Type::i32(), p);
  b.print_int(v);
  b.ret();
  b.end_function();
  return m;
}

TEST(Verifier, AcceptsValidModule) {
  const auto m = valid_module();
  EXPECT_TRUE(verify(m).empty()) << verify_to_string(m);
}

TEST(Verifier, RejectsEmptyBlock) {
  auto m = valid_module();
  m.functions[0].blocks.push_back({"empty", {}});
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  auto m = valid_module();
  m.functions[0].blocks[0].insts.pop_back();  // drop the ret
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  auto m = valid_module();
  auto& block = m.functions[0].blocks[0];
  std::swap(block.insts[block.insts.size() - 1],
            block.insts[block.insts.size() - 2]);
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsInvalidSuccessor) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.br(7);  // block 7 does not exist
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsOutOfRangeOperand) {
  auto m = valid_module();
  m.functions[0].insts[2].operands[0] = Value::inst(999);
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsUseBeforeDef) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.ret();
  b.end_function();
  // Make the add consume its own (later) result.
  m.functions[0].insts[x.index].operands[0] = x;
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsNonDominatingDef) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto left = b.block("left");
  const auto right = b.block("right");
  const auto join = b.block("join");
  b.set_block(entry);
  b.cond_br(b.i1(true), left, right);
  b.set_block(left);
  const Value x = b.add(b.i32(1), b.i32(2));
  b.br(join);
  b.set_block(right);
  b.br(join);
  b.set_block(join);
  b.print_int(x);  // x does not dominate join
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, AcceptsDominatingDefAcrossBlocks) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto next = b.block("next");
  b.set_block(entry);
  const Value x = b.add(b.i32(1), b.i32(2));
  b.br(next);
  b.set_block(next);
  b.print_int(x);
  b.ret();
  b.end_function();
  EXPECT_TRUE(verify(m).empty()) << verify_to_string(m);
}

TEST(Verifier, RejectsUnreachableBlock) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto dead = b.block("dead");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(exit);
  b.set_block(dead);  // well-formed but no predecessor
  b.br(exit);
  b.set_block(exit);
  b.ret();
  b.end_function();
  const auto errors = verify(m);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("unreachable"), std::string::npos)
      << verify_to_string(m);
}

TEST(Verifier, RejectsNonDominatingUseAcrossLoopBackedge) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  const auto body = b.block("body");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(header);
  b.set_block(body);
  const Value x = b.add(b.i32(1), b.i32(2));
  b.br(header);
  b.set_block(header);
  // x is defined in the loop body, which does not dominate the header
  // (the entry edge bypasses it): must be rejected, not merely flagged
  // on the first iteration.
  b.print_int(x);
  b.cond_br(b.i1(true), body, exit);
  b.set_block(exit);
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsBinopTypeMismatch) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.i32(1);
  b.add(a, a);
  b.ret();
  b.end_function();
  // Corrupt: make the second operand an i64 constant.
  auto& f = m.functions[0];
  const auto c64 = f.add_constant(Constant{Type::i64(), 1});
  f.insts[0].operands[1] = Value::constant(c64);
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsFloatBinopOnInts) {
  auto make = [] {
    Module m;
    IRBuilder b(m);
    b.begin_function("main", {}, Type::void_());
    b.set_block(b.block("entry"));
    b.fadd(b.i32(1), b.i32(2));
    b.ret();
    b.end_function();
    return m;
  };
  EXPECT_FALSE(verify(make()).empty());
}

TEST(Verifier, RejectsCmpWithoutPredicate) {
  auto m = valid_module();
  Instruction cmp;
  cmp.op = Opcode::ICmp;
  cmp.type = Type::i1();
  cmp.operands = {Value::constant(0), Value::constant(0)};
  cmp.pred = CmpPred::None;
  auto& f = m.functions[0];
  // Insert before the terminator.
  const auto id = static_cast<uint32_t>(f.insts.size());
  cmp.block = 0;
  f.insts.push_back(cmp);
  f.blocks[0].insts.insert(f.blocks[0].insts.end() - 1, id);
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsFcmpUnsignedPredicate) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.fcmp(CmpPred::ULt, b.f32(1), b.f32(2));
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsBadCasts) {
  {
    Module m;
    IRBuilder b(m);
    b.begin_function("main", {}, Type::void_());
    b.set_block(b.block("entry"));
    b.trunc(b.i32(1), Type::i64());  // widening trunc
    b.ret();
    b.end_function();
    EXPECT_FALSE(verify(m).empty());
  }
  {
    Module m;
    IRBuilder b(m);
    b.begin_function("main", {}, Type::void_());
    b.set_block(b.block("entry"));
    b.bitcast(b.i32(1), Type::f64());  // width change
    b.ret();
    b.end_function();
    EXPECT_FALSE(verify(m).empty());
  }
}

TEST(Verifier, RejectsCondBrOnNonBool) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto t = b.block("t");
  b.set_block(entry);
  b.cond_br(b.i32(1), t, t);
  b.set_block(t);
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsRetTypeMismatch) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.i64(0));
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsRetValueInVoidFunction) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.ret(b.i32(0));
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsCallArgumentMismatch) {
  Module m;
  IRBuilder b(m);
  const auto callee = b.begin_function("callee", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  b.ret();
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.call(callee, {b.i64(0)});
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsPhiIncomingMismatch) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  b.set_block(entry);
  b.br(header);
  b.set_block(header);
  const Value iv = b.phi(Type::i32());
  b.add_phi_incoming(iv, b.i32(0), entry);
  b.add_phi_incoming(iv, b.i32(1), entry);  // duplicate / wrong count
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsPhiAfterNonPhi) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto next = b.block("next");
  b.set_block(entry);
  b.br(next);
  b.set_block(next);
  b.add(b.i32(1), b.i32(2));
  const Value p = b.phi(Type::i32());
  b.add_phi_incoming(p, b.i32(0), entry);
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsPrintTypeMismatch) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.print_float(b.i32(1));  // float print of an int
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, RejectsZeroSizedAlloca) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Instruction inst;
  inst.op = Opcode::Alloca;
  inst.type = Type::ptr();
  inst.imm = 0;
  m.functions[0].append(0, inst);
  b.ret();
  b.end_function();
  EXPECT_FALSE(verify(m).empty());
}

// Every bundled workload must verify: this is the authoring safety net.
class WorkloadVerify
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(WorkloadVerify, Verifies) {
  const auto m = GetParam().build();
  EXPECT_TRUE(verify(m).empty()) << verify_to_string(m);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadVerify,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::ir
