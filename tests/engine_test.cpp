// Execution-engine parity suite: every registered backend (the
// direct-threaded engine of interp/threaded.h, the native-code engine
// of interp/native.h, and whatever all_engine_kinds() grows next) must
// be bit-identical to the reference Interpreter — same RunResults, same
// hook call order and arguments, same crash messages and fuel
// accounting, interchangeable snapshots, identical FI campaigns at any
// thread count — across every bundled workload. The suite iterates
// all_engine_kinds() rather than naming backends, so adding an
// EngineKind automatically enrolls it here. Also unit-tests the
// lowering itself (slot layout, jump-target fixup, superinstruction
// fusion). docs/ENGINE.md states the contract this file enforces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fi/campaign.h"
#include "fi/trial_runner.h"
#include "interp/engine.h"
#include "interp/interpreter.h"
#include "interp/native.h"
#include "interp/threaded.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Every backend that must match the reference interpreter bit for bit.
std::vector<interp::EngineKind> nonreference_kinds() {
  std::vector<interp::EngineKind> kinds;
  for (const auto kind : interp::all_engine_kinds()) {
    if (kind != interp::EngineKind::Interp) kinds.push_back(kind);
  }
  return kinds;
}

void expect_same_run(const interp::RunResult& a, const interp::RunResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.debug_output, b.debug_output);
  EXPECT_EQ(a.dynamic_insts, b.dynamic_insts);
  EXPECT_EQ(a.dynamic_results, b.dynamic_results);
  EXPECT_EQ(a.ret_raw, b.ret_raw);
  EXPECT_EQ(a.crash_reason, b.crash_reason);
}

void expect_identical(const fi::CampaignResult& a,
                      const fi::CampaignResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.hang, b.hang);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.fuel_exhausted, b.fuel_exhausted);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target) << "slot " << i;
    EXPECT_EQ(a.trials[i].bit, b.trials[i].bit) << "slot " << i;
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "slot " << i;
    EXPECT_EQ(a.trials[i].fuel_exhausted, b.trials[i].fuel_exhausted)
        << "slot " << i;
  }
}

// Same stateful shape as snapshot_test.cpp: globals, a call, allocas, a
// memcpy, data-dependent branches, interleaved output.
Module make_stateful() {
  Module m;
  const auto gt = m.add_global({"table", 32 * 4, {}});
  const auto gs = m.add_global({"shadow", 32 * 4, {}});
  IRBuilder b(m);

  const auto mix = b.begin_function("mix", {Type::i64()}, Type::i64());
  b.set_block(b.block("entry"));
  const Value x = b.arg(0);
  const Value h =
      b.mul(b.xor_(x, b.lshr(x, b.i64(3))), b.i64(2654435761ull));
  b.ret(b.urem(h, b.i64(1000003)));
  b.end_function();

  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value t = b.global(gt);
  workloads::lcg_fill_i32(b, t, 32, 7, 977);
  b.memcpy_(b.global(gs), t, 32 * 4);
  const Value acc = b.alloca_(8, "acc");
  b.store(b.i64(1), acc);
  workloads::counted_loop(b, 0, 40, 1, [&](Value i) {
    const Value idx = b.urem(i, b.i32(32));
    const Value cell = b.gep(b.global(gs), idx, 4);
    const Value v = b.zext(b.load(Type::i32(), cell), Type::i64());
    const Value a0 = b.load(Type::i64(), acc);
    const Value a1 = b.call(mix, {b.add(a0, v)});
    b.store(a1, acc);
    b.store(b.trunc(a1, Type::i32()), cell);
    workloads::if_then(b, b.icmp(ir::CmpPred::Eq, b.urem(i, b.i32(8)),
                                 b.i32(0)),
                       [&] { b.print_uint(b.load(Type::i64(), acc)); });
  });
  b.print_uint(b.load(Type::i64(), acc));
  b.ret();
  b.end_function();
  return m;
}

TEST(EngineKind, NamesRoundTrip) {
  EXPECT_STREQ(interp::engine_kind_name(interp::EngineKind::Interp),
               "interp");
  EXPECT_STREQ(interp::engine_kind_name(interp::EngineKind::Threaded),
               "threaded");
  EXPECT_STREQ(interp::engine_kind_name(interp::EngineKind::Native),
               "native");
  // Every kind round-trips through its name.
  for (const auto kind : interp::all_engine_kinds()) {
    EXPECT_EQ(interp::engine_kind_from_name(interp::engine_kind_name(kind)),
              kind);
  }
  EXPECT_FALSE(interp::engine_kind_from_name("Interp").has_value());
  EXPECT_FALSE(interp::engine_kind_from_name("").has_value());
  EXPECT_FALSE(interp::engine_kind_from_name("jit").has_value());
  // The diagnostic suffix lists every valid choice.
  const std::string names = interp::engine_kind_names();
  for (const auto kind : interp::all_engine_kinds()) {
    EXPECT_NE(names.find(interp::engine_kind_name(kind)), std::string::npos);
  }
}

TEST(EngineKind, FactoryBuildsTheRequestedBackend) {
  const auto m = make_stateful();
  const auto reference = interp::Interpreter(m).run_main({});
  for (const auto kind : interp::all_engine_kinds()) {
    const auto engine = interp::make_engine(kind, m);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_STREQ(engine->name(), interp::engine_kind_name(kind));
    expect_same_run(engine->run_main({}), reference);
  }
}

// ---- Lowering unit tests -----------------------------------------------

// A diamond with phis: checks slot layout (blocks concatenated in
// program order, one slot per instruction), jump-target fixup on Br and
// CondBr, and phi bundling at block entry.
Module make_diamond() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto then_bb = b.block("then");
  const auto else_bb = b.block("else");
  const auto join = b.block("join");
  b.set_block(entry);
  const Value n = b.add(b.i32(30), b.i32(12));
  const Value c = b.icmp(ir::CmpPred::SLt, n, b.i32(40));
  b.cond_br(c, then_bb, else_bb);
  b.set_block(then_bb);
  const Value tv = b.add(n, b.i32(1));
  b.br(join);
  b.set_block(else_bb);
  const Value ev = b.mul(n, b.i32(3));
  b.br(join);
  b.set_block(join);
  const Value p = b.phi(Type::i32(), "p");
  b.add_phi_incoming(p, tv, then_bb);
  b.add_phi_incoming(p, ev, else_bb);
  b.print_uint(b.zext(p, Type::i64()));
  b.ret();
  b.end_function();
  return m;
}

TEST(Lowering, SlotLayoutAndJumpTargets) {
  const auto m = make_diamond();
  const auto program = interp::LoweredProgram::lower(m);
  ASSERT_EQ(program->funcs.size(), 1u);
  const auto& lf = program->funcs[0];
  const auto& f = m.functions[0];

  // One slot per instruction; blocks concatenated in program order.
  ASSERT_EQ(lf.code.size(), f.num_insts());
  ASSERT_EQ(lf.blocks.size(), f.num_blocks());
  uint32_t expect_start = 0;
  for (size_t bb = 0; bb < f.num_blocks(); ++bb) {
    EXPECT_EQ(lf.blocks[bb].start, expect_start) << "block " << bb;
    EXPECT_EQ(lf.blocks[bb].entry_ip,
              lf.blocks[bb].start + lf.blocks[bb].n_phis);
    expect_start += static_cast<uint32_t>(f.blocks[bb].insts.size());
    // Slot offset of instruction k of the block is start + k: the
    // (block, cursor) <-> stream-offset conversion Snapshots rely on.
    for (size_t k = 0; k < f.blocks[bb].insts.size(); ++k) {
      EXPECT_EQ(lf.code[lf.blocks[bb].start + k].inst,
                f.blocks[bb].insts[k]);
    }
  }

  // CondBr targets are lowered to block ids: a=taken, b=fallthrough.
  const auto& cond_ir = f.inst(f.terminator(0));
  ASSERT_EQ(cond_ir.op, ir::Opcode::CondBr);
  const auto& cond = lf.code[lf.blocks[0].start + f.blocks[0].insts.size() - 1];
  EXPECT_EQ(cond.op, interp::LOp::CondBr);
  EXPECT_EQ(cond.a, cond_ir.succ[0]);
  EXPECT_EQ(cond.b, cond_ir.succ[1]);
  // Br in "then" jumps to the join block.
  const auto& br_ir = f.inst(f.terminator(1));
  ASSERT_EQ(br_ir.op, ir::Opcode::Br);
  const auto& br = lf.code[lf.blocks[1].start + f.blocks[1].insts.size() - 1];
  EXPECT_EQ(br.op, interp::LOp::Br);
  EXPECT_EQ(br.a, br_ir.succ[0]);

  // The phi landed in the join block's bundle, with both incoming edges,
  // and its dispatch slot is dead (never executed).
  ASSERT_EQ(lf.blocks[3].n_phis, 1u);
  EXPECT_EQ(lf.blocks[3].phis[0].incoming.size(), 2u);
  EXPECT_EQ(lf.blocks[3].phis[0].incoming[0].first, 1u);
  EXPECT_EQ(lf.blocks[3].phis[0].incoming[1].first, 2u);
  EXPECT_EQ(lf.code[lf.blocks[3].start].op, interp::LOp::Phi);

  interp::ThreadedEngine engine(m, program);
  const auto res = engine.run_main({});
  EXPECT_EQ(res.outcome, interp::Outcome::Ok);
  EXPECT_EQ(res.output, "126\n");  // 42 < 40 is false: else path, 42 * 3
}

TEST(Lowering, SuperinstructionsFuseOnlyAdjacentDependentPairs) {
  const auto m = make_stateful();
  const auto program = interp::LoweredProgram::lower(m);
  EXPECT_GT(program->superinstructions, 0u);
  EXPECT_GT(program->lowered_insts, 0u);

  uint64_t fused_heads = 0;
  for (const auto& lf : program->funcs) {
    ASSERT_EQ(lf.code.size(), lf.fused.size());
    for (size_t i = 0; i < lf.fused.size(); ++i) {
      const auto op = lf.fused[i].op;
      // The unfused stream never contains superinstructions.
      EXPECT_NE(lf.code[i].op, interp::LOp::CmpBr);
      EXPECT_NE(lf.code[i].op, interp::LOp::LoadCast);
      if (op == interp::LOp::CmpBr || op == interp::LOp::LoadCast) {
        ++fused_heads;
        // Only the pair head is rewritten; the second slot keeps its
        // standalone form so a resume landing mid-pair still works.
        ASSERT_LT(i + 1, lf.fused.size());
        EXPECT_EQ(lf.fused[i + 1].op, lf.code[i + 1].op);
        if (op == interp::LOp::CmpBr) {
          EXPECT_EQ(lf.code[i].op, interp::LOp::Cmp);
          EXPECT_EQ(lf.fused[i + 1].op, interp::LOp::CondBr);
        } else {
          EXPECT_EQ(lf.code[i].op, interp::LOp::Load);
        }
      } else {
        // Non-head slots are identical between the two streams.
        EXPECT_EQ(static_cast<int>(op), static_cast<int>(lf.code[i].op));
      }
    }
  }
  EXPECT_EQ(fused_heads, program->superinstructions);
}

// ---- Whole-workload parity ---------------------------------------------

TEST(EngineParity, GoldenRunsMatchOnAllWorkloads) {
  for (const auto& w : workloads::all_workloads()) {
    const auto m = w.build();
    interp::Interpreter interp(m);
    for (const auto kind : nonreference_kinds()) {
      const auto engine = interp::make_engine(kind, m);
      expect_same_run(interp.run_main({}), engine->run_main({}));
      // Dirty re-run: reset semantics must match too.
      expect_same_run(interp.run_main({}), engine->run_main({}));
    }
  }
}

TEST(EngineParity, CampaignsMatchOnAllWorkloadsAndThreadCounts) {
  for (const auto& w : workloads::all_workloads()) {
    const auto m = w.build();
    const auto profile = prof::collect_profile(m);
    fi::CampaignOptions options;
    options.trials = 24;
    options.seed = 7;
    options.threads = 1;
    options.max_snapshots = 16;
    const auto reference = fi::run_overall_campaign(m, profile, options);

    for (const auto kind : nonreference_kinds()) {
      options.engine = kind;
      options.threads = 1;
      expect_identical(fi::run_overall_campaign(m, profile, options),
                       reference);
      options.threads = 8;
      expect_identical(fi::run_overall_campaign(m, profile, options),
                       reference);
    }
  }
}

// ---- Hook semantics through superinstructions --------------------------

// Full-interest hook that both records every callback (a textual trace)
// and perturbs results: flipping bit 0 of cmp results redirects fused
// CmpBr branches, and perturbing load results feeds mutated values into
// fused LoadCast casts. Both engines must produce the same trace and the
// same RunResult — i.e. the fused handlers must observe the committed
// (hook-mutated) register, not the value they computed.
class TraceHooks final : public interp::ExecHooks {
 public:
  void on_result(ir::InstRef ref, uint64_t idx, uint64_t& bits) override {
    append("res", ref, {idx, bits});
    if (idx % 13 == 5) bits ^= 1;
  }
  void on_exec(ir::InstRef ref, std::span<const uint64_t> ops) override {
    trace_ += "exec " + std::to_string(ref.func) + ":" +
              std::to_string(ref.inst);
    for (const uint64_t o : ops) trace_ += " " + std::to_string(o);
    trace_ += '\n';
  }
  void on_branch(ir::InstRef ref, bool taken) override {
    append("br", ref, {taken ? 1u : 0u});
  }
  void on_load(ir::InstRef ref, uint64_t addr, unsigned bytes) override {
    append("ld", ref, {addr, bytes});
  }
  void on_store(ir::InstRef ref, uint64_t addr, unsigned bytes,
                bool silent) override {
    append("st", ref, {addr, bytes, silent ? 1u : 0u});
  }
  void on_alloc(uint64_t base, uint64_t size) override {
    append("al", {}, {base, size});
  }
  void on_memcpy(ir::InstRef ref, uint64_t dst, uint64_t src,
                 uint64_t bytes) override {
    append("mc", ref, {dst, src, bytes});
  }

  const std::string& trace() const { return trace_; }

 private:
  void append(const char* tag, ir::InstRef ref,
              std::initializer_list<uint64_t> vals) {
    trace_ += tag;
    trace_ += ' ';
    trace_ += std::to_string(ref.func) + ":" + std::to_string(ref.inst);
    for (const uint64_t v : vals) trace_ += " " + std::to_string(v);
    trace_ += '\n';
  }
  std::string trace_;
};

TEST(EngineParity, FullInterestMutatingHooksTraceIdentically) {
  const auto m = make_stateful();
  TraceHooks interp_hooks;
  interp::RunOptions a;
  a.hooks = &interp_hooks;
  const auto ra = interp::Interpreter(m).run_main(a);
  ASSERT_FALSE(interp_hooks.trace().empty());
  // Dense hooks force the native engine onto its fallback path; the
  // trace must be bit-identical either way.
  for (const auto kind : nonreference_kinds()) {
    TraceHooks hooks;
    interp::RunOptions b;
    b.hooks = &hooks;
    const auto rb = interp::make_engine(kind, m)->run_main(b);
    expect_same_run(ra, rb);
    EXPECT_EQ(interp_hooks.trace(), hooks.trace())
        << "engine " << interp::engine_kind_name(kind);
  }
}

// ---- Crash / hang parity ----------------------------------------------

TEST(EngineParity, CrashReasonsMatchExactly) {
  // Division by zero.
  {
    Module m;
    IRBuilder b(m);
    b.begin_function("main", {}, Type::void_());
    b.set_block(b.block("entry"));
    b.print_int(b.sdiv(b.i32(7), b.sub(b.i32(1), b.i32(1))));
    b.ret();
    b.end_function();
    const auto ra = interp::Interpreter(m).run_main({});
    ASSERT_EQ(ra.outcome, interp::Outcome::Crash);
    for (const auto kind : nonreference_kinds()) {
      expect_same_run(ra, interp::make_engine(kind, m)->run_main({}));
    }
  }
  // Out-of-bounds load: the crash message embeds the faulting address,
  // so parity here also checks address-space layout parity.
  {
    Module m;
    const auto g = m.add_global({"buf", 16, {}});
    IRBuilder b(m);
    b.begin_function("main", {}, Type::void_());
    b.set_block(b.block("entry"));
    b.print_uint(b.zext(
        b.load(Type::i32(), b.gep(b.global(g), b.i32(8), 4)), Type::i64()));
    b.ret();
    b.end_function();
    const auto ra = interp::Interpreter(m).run_main({});
    ASSERT_EQ(ra.outcome, interp::Outcome::Crash);
    EXPECT_NE(ra.crash_reason.find("out-of-bounds load"), std::string::npos);
    for (const auto kind : nonreference_kinds()) {
      expect_same_run(ra, interp::make_engine(kind, m)->run_main({}));
    }
  }
}

TEST(EngineParity, HangFuelAccountingMatches) {
  const auto m = make_stateful();
  for (const uint64_t fuel : {1ull, 2ull, 137ull, 1000ull}) {
    interp::RunOptions options;
    options.fuel = fuel;
    const auto ra = interp::Interpreter(m).run_main(options);
    ASSERT_EQ(ra.outcome, interp::Outcome::Hang) << "fuel " << fuel;
    for (const auto kind : nonreference_kinds()) {
      expect_same_run(ra, interp::make_engine(kind, m)->run_main(options));
    }
  }
}

// ---- Snapshot interchange ----------------------------------------------

TEST(EngineParity, SnapshotsRecordedOnEitherEngineResumeOnTheOther) {
  const auto m = make_stateful();
  const auto reference = interp::Interpreter(m).run_main({});
  ASSERT_EQ(reference.outcome, interp::Outcome::Ok);

  for (const auto recorder_kind : interp::all_engine_kinds()) {
    std::vector<interp::Snapshot> snapshots;
    interp::RunOptions recording;
    recording.snapshot_interval = 17;
    recording.snapshots = &snapshots;
    const auto rec = interp::make_engine(recorder_kind, m);
    expect_same_run(rec->run_main(recording), reference);
    ASSERT_GT(snapshots.size(), 3u);

    // Every captured boundary resumes bit-identically on every backend.
    std::vector<std::unique_ptr<interp::ExecutionEngine>> resumers;
    for (const auto kind : interp::all_engine_kinds()) {
      resumers.push_back(interp::make_engine(kind, m));
    }
    for (const auto& s : snapshots) {
      for (const auto& resumer : resumers) {
        expect_same_run(resumer->resume(s, {}), reference);
      }
    }
  }
}

TEST(EngineParity, PristineSnapshotsMatchAcrossEngines) {
  const auto m = make_stateful();
  interp::Interpreter interp(m);
  const auto a = interp.snapshot();
  for (const auto kind : nonreference_kinds()) {
    const auto b = interp::make_engine(kind, m)->snapshot();
    EXPECT_EQ(a.dyn_insts, b.dyn_insts);
    EXPECT_EQ(a.dyn_results, b.dyn_results);
    EXPECT_EQ(a.stack.size(), b.stack.size());
    EXPECT_EQ(a.global_bases, b.global_bases);
    EXPECT_EQ(a.memory.bytes_live(), b.memory.bytes_live());
  }
}

TEST(EngineParity, SnapshotPlansAreFieldIdentical) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);
  const uint64_t fuel = fi::campaign_fuel(profile, 50);

  // Hottest result-producing instruction, as an occurrence target.
  ir::InstRef target;
  uint64_t best = 0;
  const auto& main_fn = m.functions.back();
  for (uint32_t i = 0; i < main_fn.num_insts(); ++i) {
    const ir::InstRef ref{static_cast<uint32_t>(m.functions.size() - 1), i};
    if (main_fn.inst(i).has_result() && profile.exec(ref) > best) {
      best = profile.exec(ref);
      target = ref;
    }
  }
  ASSERT_GT(best, 10u);

  const auto expect_same_plan = [](const fi::SnapshotPlan& plan_i,
                                   const fi::SnapshotPlan& plan_t) {
    EXPECT_EQ(plan_i.interval, plan_t.interval);
    EXPECT_EQ(plan_i.bytes, plan_t.bytes);
    EXPECT_EQ(plan_i.occurrence_dyn_index, plan_t.occurrence_dyn_index);
    ASSERT_EQ(plan_i.snapshots.size(), plan_t.snapshots.size());
    ASSERT_GT(plan_i.snapshots.size(), 0u);
    for (size_t k = 0; k < plan_i.snapshots.size(); ++k) {
      const auto& si = plan_i.snapshots[k];
      const auto& st = plan_t.snapshots[k];
      EXPECT_EQ(si.dyn_insts, st.dyn_insts) << "snapshot " << k;
      EXPECT_EQ(si.dyn_results, st.dyn_results) << "snapshot " << k;
      EXPECT_EQ(si.output, st.output) << "snapshot " << k;
      EXPECT_EQ(si.debug_output, st.debug_output) << "snapshot " << k;
      EXPECT_EQ(si.global_bases, st.global_bases) << "snapshot " << k;
      ASSERT_EQ(si.stack.size(), st.stack.size()) << "snapshot " << k;
      for (size_t f = 0; f < si.stack.size(); ++f) {
        const auto& fi_ = si.stack[f];
        const auto& ft = st.stack[f];
        EXPECT_EQ(fi_.func, ft.func);
        EXPECT_EQ(fi_.block, ft.block);
        EXPECT_EQ(fi_.prev_block, ft.prev_block);
        EXPECT_EQ(fi_.cursor, ft.cursor);
        EXPECT_EQ(fi_.regs, ft.regs);
        EXPECT_EQ(fi_.args, ft.args);
        EXPECT_EQ(fi_.allocas, ft.allocas);
        EXPECT_EQ(fi_.ret_to_inst, ft.ret_to_inst);
      }
    }
  };

  const auto plan_i = fi::build_snapshot_plan(
      m, profile.total_results, fuel, ir::kNoFunc, 16, 256ull << 20, target,
      fi::make_engine_context(m, interp::EngineKind::Interp));
  for (const auto kind : nonreference_kinds()) {
    SCOPED_TRACE(interp::engine_kind_name(kind));
    const auto plan_t = fi::build_snapshot_plan(
        m, profile.total_results, fuel, ir::kNoFunc, 16, 256ull << 20,
        target, fi::make_engine_context(m, kind));
    expect_same_plan(plan_i, plan_t);
  }
}

// ---- Cross-engine checkpoint resume ------------------------------------

std::string tmp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(EngineParity, CheckpointWrittenByOneEngineResumesOnTheOther) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);

  fi::CampaignOptions base;
  base.trials = 60;
  base.seed = 21;
  base.threads = 1;
  base.max_snapshots = 0;
  const auto reference = fi::run_overall_campaign(m, profile, base);

  // Every ordered pair of distinct backends: checkpoints are engine-free,
  // so a campaign killed under one engine must resume bit-identically
  // under any other.
  for (const auto first_kind : interp::all_engine_kinds()) {
  for (const auto second_kind : interp::all_engine_kinds()) {
    if (first_kind == second_kind) continue;
    SCOPED_TRACE(std::string(interp::engine_kind_name(first_kind)) + " -> " +
                 interp::engine_kind_name(second_kind));
    // Full checkpointed run under the first engine, "killed" after 23
    // trials by truncating the log.
    const std::string full = tmp_path("engine_ckpt_full.jsonl");
    auto write = base;
    write.engine = first_kind;
    write.max_snapshots = 8;
    write.checkpoint_path = full;
    fi::run_overall_campaign(m, profile, write);

    std::ifstream in(full, std::ios::binary);
    std::string line, cut;
    size_t kept = 0;
    while (std::getline(in, line) && kept < 1 + 23) {
      cut += line + "\n";
      ++kept;
    }
    ASSERT_EQ(kept, 1u + 23);

    const std::string path = tmp_path("engine_ckpt_cut.jsonl");
    std::ofstream(path, std::ios::binary) << cut;
    auto resume = base;
    resume.engine = second_kind;
    resume.max_snapshots = 8;
    resume.threads = 8;
    resume.checkpoint_path = path;
    const auto merged = fi::run_overall_campaign(m, profile, resume);
    EXPECT_EQ(merged.resumed, 23u);
    expect_identical(merged, reference);
  }
  }
}

TEST(EngineParity, PerInstructionCampaignsMatch) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);
  ir::InstRef target;
  uint64_t best = 0;
  const auto& main_fn = m.functions.back();
  for (uint32_t i = 0; i < main_fn.num_insts(); ++i) {
    const ir::InstRef ref{static_cast<uint32_t>(m.functions.size() - 1), i};
    if (main_fn.inst(i).has_result() && profile.exec(ref) > best) {
      best = profile.exec(ref);
      target = ref;
    }
  }
  ASSERT_GT(best, 10u);

  fi::CampaignOptions options;
  options.trials = 60;
  options.seed = 31;
  options.threads = 1;
  options.max_snapshots = 16;
  const auto reference = fi::run_instruction_campaign(m, profile, target,
                                                      options);
  for (const auto kind : nonreference_kinds()) {
    options.engine = kind;
    for (const uint32_t threads : {1u, 8u}) {
      options.threads = threads;
      expect_identical(
          fi::run_instruction_campaign(m, profile, target, options),
          reference);
    }
  }
}

// engine.* manifest metrics: thread-count invariant, and consistent with
// the selected backend.
TEST(EngineMetrics, ExportedOncePerCampaignAndThreadInvariant) {
  const auto m = make_stateful();
  const auto profile = prof::collect_profile(m);
  fi::CampaignOptions options;
  options.trials = 40;
  options.seed = 3;
  options.max_snapshots = 8;

  obs::Registry interp_metrics;
  options.threads = 1;
  options.metrics = &interp_metrics;
  fi::run_overall_campaign(m, profile, options);
  EXPECT_EQ(interp_metrics.counter("engine.threaded"), 0u);
  EXPECT_EQ(interp_metrics.counter("engine.lowered_insts"), 0u);
  EXPECT_EQ(interp_metrics.counter("engine.superinstructions"), 0u);

  options.engine = interp::EngineKind::Threaded;
  uint64_t lowered[2], fused[2], funcs[2];
  for (int i = 0; i < 2; ++i) {
    obs::Registry metrics;
    options.threads = i == 0 ? 1 : 8;
    options.metrics = &metrics;
    fi::run_overall_campaign(m, profile, options);
    EXPECT_EQ(metrics.counter("engine.threaded"), 1u);
    lowered[i] = metrics.counter("engine.lowered_insts");
    fused[i] = metrics.counter("engine.superinstructions");
    funcs[i] = metrics.counter("engine.lowered_functions");
    EXPECT_GT(lowered[i], 0u);
    EXPECT_GT(fused[i], 0u);
    EXPECT_EQ(funcs[i], m.functions.size());
  }
  EXPECT_EQ(lowered[0], lowered[1]);
  EXPECT_EQ(fused[0], fused[1]);
  EXPECT_EQ(funcs[0], funcs[1]);

  const auto program = interp::LoweredProgram::lower(m);
  EXPECT_EQ(lowered[0], program->lowered_insts);
  EXPECT_EQ(fused[0], program->superinstructions);

  // Native backend: compile metrics are internally consistent whether or
  // not this host can runtime-compile, and thread-count invariant (the
  // campaign compiles once, not per worker).
  options.engine = interp::EngineKind::Native;
  uint64_t nfuncs[2], nbytes[2];
  for (int i = 0; i < 2; ++i) {
    obs::Registry metrics;
    options.threads = i == 0 ? 1 : 8;
    options.metrics = &metrics;
    fi::run_overall_campaign(m, profile, options);
    EXPECT_EQ(metrics.counter("engine.native"), 1u);
    EXPECT_EQ(metrics.counter("engine.threaded"), 0u);
    nfuncs[i] = metrics.counter("engine.native.functions");
    nbytes[i] = metrics.counter("engine.native.code_bytes");
    if (nfuncs[i] > 0) {
      EXPECT_EQ(nfuncs[i], m.functions.size());
      EXPECT_GT(nbytes[i], 0u);
    } else {
      // Host can't runtime-compile: no code, and every run fell back.
      EXPECT_EQ(nbytes[i], 0u);
    }
    // The backend shares the threaded lowering (resume mapping and
    // fallback engine), so lowering metrics are populated either way;
    // the snapshot-recording golden run always counts as a fallback.
    EXPECT_GT(metrics.counter("engine.lowered_insts"), 0u);
    EXPECT_GT(metrics.counter("engine.native.fallbacks"), 0u);
  }
  EXPECT_EQ(nfuncs[0], nfuncs[1]);
  EXPECT_EQ(nbytes[0], nbytes[1]);
}

#if defined(__unix__) || defined(__APPLE__)

// Scoped TRIDENT_NATIVE_CACHE override (restores the prior value so the
// other native tests keep running cache-less).
struct NativeCacheEnv {
  std::optional<std::string> prev;
  explicit NativeCacheEnv(const std::string& dir) {
    if (const char* p = std::getenv("TRIDENT_NATIVE_CACHE")) prev = p;
    ::setenv("TRIDENT_NATIVE_CACHE", dir.c_str(), 1);
  }
  ~NativeCacheEnv() {
    if (prev) {
      ::setenv("TRIDENT_NATIVE_CACHE", prev->c_str(), 1);
    } else {
      ::unsetenv("TRIDENT_NATIVE_CACHE");
    }
  }
};

TEST(NativeEngine, PersistentCacheSkipsRecompileAcrossBuilds) {
  namespace fs = std::filesystem;
  const std::string cache_dir =
      ::testing::TempDir() + "trident_native_cache_test";
  fs::remove_all(cache_dir);
  const NativeCacheEnv env(cache_dir);
  const auto m = make_stateful();

  // First build: a real compile that publishes tn-<hash>-g<ver>.so.
  const auto first = interp::NativeProgram::build_uncached(m);
  if (!first->available()) {
    GTEST_SKIP() << "host cannot runtime-compile: " << first->error();
  }
  EXPECT_EQ(first->stats().cache_hits, 0u);
  std::vector<fs::path> objects;
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    objects.push_back(entry.path());
  }
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].filename().string().substr(0, 3), "tn-");
  EXPECT_EQ(objects[0].extension(), ".so");

  // Second build (a restarted daemon, in effect): served from the cache
  // file, no compiler run, same compiled surface. Scoped so its dlopen
  // handle is closed before the corruption phase below — a still-loaded
  // library would otherwise satisfy dlopen by pathname alone.
  {
    const auto second = interp::NativeProgram::build_uncached(m);
    ASSERT_TRUE(second->available());
    EXPECT_EQ(second->stats().cache_hits, 1u);
    EXPECT_EQ(second->stats().functions, first->stats().functions);
    EXPECT_GT(second->stats().code_bytes, 0u);

    // The cached object executes bit-identically to the interpreter.
    interp::NativeEngine engine(m, second);
    expect_same_run(engine.run_main({}),
                    interp::Interpreter(m).run_main({}));
  }

  // A corrupted cache file degrades to a recompile, never to a crash or
  // a bogus hit — and the recompile heals the cache. Unlink before
  // rewriting: `first` above still maps its own original object.
  fs::remove(objects[0]);
  { std::ofstream(objects[0], std::ios::binary) << "not an ELF"; }
  const auto healed = interp::NativeProgram::build_uncached(m);
  ASSERT_TRUE(healed->available());
  EXPECT_EQ(healed->stats().cache_hits, 0u);
  const auto rehit = interp::NativeProgram::build_uncached(m);
  ASSERT_TRUE(rehit->available());
  EXPECT_EQ(rehit->stats().cache_hits, 1u);

  // A different module must not hit this module's cache entry.
  const auto other = interp::NativeProgram::build_uncached(make_diamond());
  if (other->available()) {
    EXPECT_EQ(other->stats().cache_hits, 0u);
  }
}

#endif  // POSIX

}  // namespace
}  // namespace trident
