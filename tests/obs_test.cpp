#include <gtest/gtest.h>

#include <string>

#include "core/trident.h"
#include "fi/campaign.h"
#include "ir/builder.h"
#include "obs/metrics.h"
#include "profiler/profiler.h"

namespace trident::obs {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

Module make_fragile() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value acc = b.i64(1);
  for (int i = 0; i < 8; ++i) acc = b.add(acc, acc);
  b.print_uint(acc);
  b.ret();
  b.end_function();
  return m;
}

TEST(Registry, CountersAccumulate) {
  Registry r;
  EXPECT_FALSE(r.has_counter("a"));
  EXPECT_EQ(r.counter("a"), 0u);
  r.add("a");
  r.add("a", 4);
  EXPECT_TRUE(r.has_counter("a"));
  EXPECT_EQ(r.counter("a"), 5u);
  r.set_counter("a", 2);
  EXPECT_EQ(r.counter("a"), 2u);
}

TEST(Registry, GaugesOverwrite) {
  Registry r;
  EXPECT_FALSE(r.has_gauge("rate"));
  EXPECT_DOUBLE_EQ(r.gauge("rate"), 0.0);
  r.set("rate", 1.5);
  r.set("rate", 2.5);
  EXPECT_TRUE(r.has_gauge("rate"));
  EXPECT_DOUBLE_EQ(r.gauge("rate"), 2.5);
}

TEST(Registry, JsonIsSortedAndComplete) {
  Registry r;
  r.add("z.count", 3);
  r.add("a.count", 1);
  r.set("m.rate", 0.5);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"z.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"m.rate\""), std::string::npos);
  // Ordered maps: a.count serializes before z.count, every run.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"z.count\""));
}

TEST(Manifest, CarriesSchemaAndInfo) {
  Registry r;
  r.add("fi.trials.total", 10);
  const std::string json =
      manifest_json(r, {{"command", "inject"}, {"target", "5:3"}});
  EXPECT_NE(json.find("\"schema\": \"trident-run-metrics/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"command\": \"inject\""), std::string::npos);
  EXPECT_NE(json.find("\"target\": \"5:3\""), std::string::npos);
  EXPECT_NE(json.find("\"fi.trials.total\": 10"), std::string::npos);
}

TEST(ScopedTimer, AccumulatesAcrossScopes) {
  Registry r;
  { ScopedTimer t(r, "phase.x.seconds"); }
  const double once = r.gauge("phase.x.seconds");
  EXPECT_TRUE(r.has_gauge("phase.x.seconds"));
  EXPECT_GE(once, 0.0);
  { ScopedTimer t(r, "phase.x.seconds"); }
  EXPECT_GE(r.gauge("phase.x.seconds"), once);  // sums, not overwrites
}

TEST(ProgressLine, DisabledIsNoOp) {
  ProgressLine p(false, "fi");
  p.update(1, 10);
  p.finish(10, 10);  // must not crash or write
}

// The acceptance check of the run-metrics subsystem: one registry fed by
// both a campaign and a model evaluation contains the outcome tallies,
// the trial rate, the fm solver iteration count and the memo hit rates —
// and the manifest built from it carries all of them.
TEST(Manifest, CampaignAndModelMetricsLandInOneManifest) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);

  Registry registry;
  fi::CampaignOptions options;
  options.trials = 120;
  options.metrics = &registry;
  const auto result = fi::run_overall_campaign(m, profile, options);

  const core::Trident model(m, profile, core::ModelConfig::full());
  (void)model.overall_sdc(64, 11);
  model.export_metrics(registry);

  // Outcome tallies match the campaign result exactly.
  EXPECT_EQ(registry.counter("fi.trials.total"), result.total());
  EXPECT_EQ(registry.counter("fi.outcome.sdc"), result.sdc);
  EXPECT_EQ(registry.counter("fi.outcome.benign"), result.benign);
  EXPECT_EQ(registry.counter("fi.outcome.crash"), result.crash);
  EXPECT_EQ(registry.counter("fi.outcome.hang"), result.hang);
  EXPECT_EQ(registry.counter("fi.outcome.detected"), result.detected);
  EXPECT_EQ(registry.counter("fi.outcome.sdc") +
                registry.counter("fi.outcome.benign") +
                registry.counter("fi.outcome.crash") +
                registry.counter("fi.outcome.hang") +
                registry.counter("fi.outcome.detected"),
            registry.counter("fi.trials.total"));
  EXPECT_TRUE(registry.has_gauge("fi.trials_per_sec"));
  EXPECT_GT(registry.gauge("fi.trials_per_sec"), 0.0);
  EXPECT_TRUE(registry.has_gauge("fi.campaign.seconds"));

  // Model instrumentation: the solver ran and the memo caches saw reuse
  // (overall_sdc samples the same static instructions repeatedly).
  EXPECT_TRUE(registry.has_counter("fm.solver_iterations"));
  EXPECT_TRUE(registry.has_gauge("fs.memo.hit_rate"));
  EXPECT_TRUE(registry.has_gauge("fc.memo.hit_rate"));
  EXPECT_TRUE(registry.has_gauge("trident.memo.hit_rate"));
  EXPECT_GT(registry.counter("trident.memo.lookups"), 0u);
  EXPECT_GT(registry.gauge("trident.memo.hit_rate"), 0.0);

  const std::string manifest = manifest_json(registry, {{"command", "test"}});
  for (const char* key :
       {"fi.outcome.sdc", "fi.outcome.benign", "fi.outcome.crash",
        "fi.outcome.hang", "fi.outcome.detected", "fi.trials.total",
        "fi.trials_per_sec", "fm.solver_iterations", "fs.memo.hit_rate",
        "fc.memo.hit_rate", "trident.memo.hit_rate"}) {
    EXPECT_NE(manifest.find(std::string("\"") + key + "\""),
              std::string::npos)
        << "manifest is missing " << key;
  }
}

}  // namespace
}  // namespace trident::obs
