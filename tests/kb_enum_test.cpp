// Exhaustive soundness enumeration for the known-bits binary transfer
// functions, with the shift and division transfers as the headline
// targets (they encode the subtlest claims: modulo-width amounts,
// leading-zero carry-over, power-of-two remainders).
//
// Two sweeps, both complete rather than sampled:
//
//  * Width 4, every abstraction pair: each of the 3^4 = 81 abstractions
//    per operand (each bit known-0 / known-1 / unknown) against every
//    other, checked against every concrete pair in the product of the
//    two concretizations. This covers every reachable abstract input.
//  * Width 8, every concrete pair (256 x 256): abstractions are derived
//    from the concrete values through deterministic knowledge masks,
//    including the fully-known mask, which doubles as a constant-fold
//    precision check.
//
// Soundness criterion: for every concrete execution consistent with the
// abstract operands, the concrete result must not contradict a claimed
// bit. Division by zero traps instead of producing a result, so b == 0
// is outside the concretization for udiv/urem.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/known_bits.h"
#include "support/bits.h"

namespace trident::analysis {
namespace {

using support::low_mask;
using support::sign_extend;

uint64_t ev_and(uint64_t a, uint64_t b, unsigned) { return a & b; }
uint64_t ev_or(uint64_t a, uint64_t b, unsigned) { return a | b; }
uint64_t ev_xor(uint64_t a, uint64_t b, unsigned) { return a ^ b; }
uint64_t ev_add(uint64_t a, uint64_t b, unsigned w) {
  return (a + b) & low_mask(w);
}
uint64_t ev_sub(uint64_t a, uint64_t b, unsigned w) {
  return (a - b) & low_mask(w);
}
uint64_t ev_mul(uint64_t a, uint64_t b, unsigned w) {
  return (a * b) & low_mask(w);
}
// Shift amounts are taken modulo the width, matching the interpreter.
uint64_t ev_shl(uint64_t a, uint64_t b, unsigned w) {
  return (a << (b % w)) & low_mask(w);
}
uint64_t ev_lshr(uint64_t a, uint64_t b, unsigned w) { return a >> (b % w); }
uint64_t ev_ashr(uint64_t a, uint64_t b, unsigned w) {
  return static_cast<uint64_t>(sign_extend(a, w) >> (b % w)) & low_mask(w);
}
uint64_t ev_udiv(uint64_t a, uint64_t b, unsigned) { return a / b; }
uint64_t ev_urem(uint64_t a, uint64_t b, unsigned) { return a % b; }

KnownBits kb_add0(const KnownBits& a, const KnownBits& b) {
  return kb_add(a, b, false);
}

struct OpCase {
  const char* name;
  KnownBits (*transfer)(const KnownBits&, const KnownBits&);
  uint64_t (*eval)(uint64_t, uint64_t, unsigned);
  bool traps_on_zero_b;
};

const OpCase kOps[] = {
    {"and", kb_and, ev_and, false},   {"or", kb_or, ev_or, false},
    {"xor", kb_xor, ev_xor, false},   {"add", kb_add0, ev_add, false},
    {"sub", kb_sub, ev_sub, false},   {"mul", kb_mul, ev_mul, false},
    {"shl", kb_shl, ev_shl, false},   {"lshr", kb_lshr, ev_lshr, false},
    {"ashr", kb_ashr, ev_ashr, false}, {"udiv", kb_udiv, ev_udiv, true},
    {"urem", kb_urem, ev_urem, true},
};

// One concrete result against one abstract claim.
::testing::AssertionResult consistent(const OpCase& op, const KnownBits& a,
                                      const KnownBits& b, const KnownBits& r,
                                      uint64_t x, uint64_t y, unsigned w) {
  const uint64_t v = op.eval(x, y, w) & low_mask(w);
  const uint64_t bad = ((r.zeros & v) | (r.ones & ~v)) & low_mask(w);
  if (bad == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << op.name << " w=" << w << " a={z=" << a.zeros << ",o=" << a.ones
         << "} b={z=" << b.zeros << ",o=" << b.ones << "} x=" << x
         << " y=" << y << " -> " << v << " contradicts claim {z=" << r.zeros
         << ",o=" << r.ones << "} on bits " << bad;
}

// Decode a base-3 code into a width-4 abstraction (0 = unknown,
// 1 = known-0, 2 = known-1 per bit).
KnownBits decode4(unsigned code) {
  KnownBits kb = KnownBits::unknown(4);
  for (unsigned bit = 0; bit < 4; ++bit, code /= 3) {
    const unsigned trit = code % 3;
    if (trit == 1) kb.zeros |= 1u << bit;
    if (trit == 2) kb.ones |= 1u << bit;
  }
  return kb;
}

TEST(KnownBitsEnum, Width4AllAbstractionPairsAreSound) {
  constexpr unsigned kW = 4;
  constexpr unsigned kCodes = 81;  // 3^4
  // Precompute concretizations.
  std::vector<std::vector<uint64_t>> gamma(kCodes);
  for (unsigned c = 0; c < kCodes; ++c) {
    const KnownBits kb = decode4(c);
    for (uint64_t x = 0; x < 16; ++x) {
      if ((x & kb.zeros) == 0 && (x & kb.ones) == kb.ones) {
        gamma[c].push_back(x);
      }
    }
  }
  for (const OpCase& op : kOps) {
    for (unsigned ca = 0; ca < kCodes; ++ca) {
      const KnownBits a = decode4(ca);
      for (unsigned cb = 0; cb < kCodes; ++cb) {
        const KnownBits b = decode4(cb);
        const KnownBits r = op.transfer(a, b);
        ASSERT_TRUE(r.defined) << op.name;
        ASSERT_EQ(r.width, kW) << op.name;
        ASSERT_EQ(r.zeros & r.ones, 0u) << op.name;  // no contradictions
        for (uint64_t x : gamma[ca]) {
          for (uint64_t y : gamma[cb]) {
            if (op.traps_on_zero_b && y == 0) continue;
            ASSERT_TRUE(consistent(op, a, b, r, x, y, kW));
          }
        }
      }
    }
  }
}

TEST(KnownBitsEnum, Width8AllConcretePairsAreSound) {
  constexpr unsigned kW = 8;
  for (const OpCase& op : kOps) {
    for (uint64_t x = 0; x < 256; ++x) {
      for (uint64_t y = 0; y < 256; ++y) {
        if (op.traps_on_zero_b && y == 0) continue;
        // Deterministic partial-knowledge masks: which bits of the
        // concrete values the abstraction is told about. 0xFF doubles
        // as the constant-fold precision check below.
        const uint64_t h = (x * 251 + y * 17 + 13) & 0xFF;
        const uint64_t masks[] = {0xFF, h, static_cast<uint64_t>(~h) & 0xFF,
                                  (x ^ y) & 0xFF};
        for (uint64_t ma : masks) {
          for (uint64_t mb : masks) {
            KnownBits a = KnownBits::unknown(kW);
            a.ones = x & ma;
            a.zeros = ~x & ma & 0xFF;
            KnownBits b = KnownBits::unknown(kW);
            b.ones = y & mb;
            b.zeros = ~y & mb & 0xFF;
            const KnownBits r = op.transfer(a, b);
            ASSERT_EQ(r.zeros & r.ones, 0u) << op.name;
            ASSERT_TRUE(consistent(op, a, b, r, x, y, kW));
            if (ma == 0xFF && mb == 0xFF) {
              // Fully known operands must fold to the exact result.
              ASSERT_TRUE(r.fully_known())
                  << op.name << " x=" << x << " y=" << y;
              ASSERT_EQ(r.value(), op.eval(x, y, kW) & 0xFF)
                  << op.name << " x=" << x << " y=" << y;
            }
          }
        }
      }
    }
  }
}

// The enrichments added to the division transfers during the audit:
// divisor lower bounds shrink the quotient, and a power-of-two divisor
// turns urem into a mask of the dividend.
TEST(KnownBitsEnum, DivisionTransfersUseDivisorBounds) {
  // udiv: dividend < 2^8 (unknown i8 zext'd shape), divisor known >= 64
  // (bit 6 known one) leaves at most 2 significant bits.
  KnownBits a = KnownBits::unknown(8);
  KnownBits b = KnownBits::unknown(8);
  b.ones = 0x40;
  const KnownBits q = kb_udiv(a, b);
  EXPECT_EQ(q.zeros & 0xFC, 0xFCu);

  // urem by a known power of two keeps exactly the low bits.
  KnownBits pow2 = KnownBits::constant(8, 8);
  KnownBits dividend = KnownBits::unknown(8);
  dividend.ones = 0x05;
  dividend.zeros = 0x02;
  const KnownBits r = kb_urem(dividend, pow2);
  EXPECT_EQ(r.ones, 0x05u);
  EXPECT_EQ(r.zeros, 0xFAu);
  EXPECT_TRUE(r.fully_known());

  // urem: the result is strictly below the divisor's umax.
  KnownBits small = KnownBits::unknown(8);
  small.zeros = 0xF0;  // divisor <= 15
  const KnownBits m = kb_urem(KnownBits::unknown(8), small);
  EXPECT_EQ(m.zeros & 0xF0, 0xF0u);
}

}  // namespace
}  // namespace trident::analysis
