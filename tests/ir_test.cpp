#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.h"
#include "ir/eval.h"
#include "ir/printer.h"

namespace trident::ir {
namespace {

TEST(Type, Widths) {
  EXPECT_EQ(Type::i1().width(), 1u);
  EXPECT_EQ(Type::i32().width(), 32u);
  EXPECT_EQ(Type::f64().width(), 64u);
  EXPECT_EQ(Type::ptr().width(), 64u);
  EXPECT_EQ(Type::void_().width(), 0u);
}

TEST(Type, StoreSizes) {
  EXPECT_EQ(Type::i1().store_size(), 1u);
  EXPECT_EQ(Type::i8().store_size(), 1u);
  EXPECT_EQ(Type::i16().store_size(), 2u);
  EXPECT_EQ(Type::i32().store_size(), 4u);
  EXPECT_EQ(Type::i64().store_size(), 8u);
  EXPECT_EQ(Type::f32().store_size(), 4u);
  EXPECT_EQ(Type::f64().store_size(), 8u);
  EXPECT_EQ(Type::ptr().store_size(), 8u);
}

TEST(Type, Names) {
  EXPECT_EQ(Type::i32().str(), "i32");
  EXPECT_EQ(Type::f32().str(), "f32");
  EXPECT_EQ(Type::ptr().str(), "ptr");
  EXPECT_EQ(Type::void_().str(), "void");
}

TEST(Value, Accessors) {
  EXPECT_TRUE(Value::none().is_none());
  EXPECT_TRUE(Value::inst(3).is_inst());
  EXPECT_TRUE(Value::arg(0).is_arg());
  EXPECT_TRUE(Value::constant(1).is_const());
  EXPECT_TRUE(Value::global(2).is_global());
  EXPECT_EQ(Value::inst(3), Value::inst(3));
  EXPECT_NE(Value::inst(3), Value::arg(3));
}

TEST(PrintSpec, PackUnpack) {
  PrintSpec spec{PrintSpec::Kind::Float, 7, false};
  const auto round = PrintSpec::unpack(spec.pack());
  EXPECT_EQ(round.kind, PrintSpec::Kind::Float);
  EXPECT_EQ(round.precision, 7);
  EXPECT_FALSE(round.is_output);
}

TEST(Builder, ConstantsDeduplicated) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.i32(42);
  const Value c = b.i32(42);
  const Value d = b.i32(43);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, d);
  // Same payload, different type: distinct constants.
  const Value e = b.i64(42);
  EXPECT_NE(a, e);
  b.ret();
  b.end_function();
  EXPECT_EQ(m.functions[0].constants.size(), 3u);
}

TEST(Builder, FloatConstants) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.f32(1.5f);
  const Value c = b.f32(1.5f);
  EXPECT_EQ(a, c);
  const auto& cst = m.functions[0].constants[a.index];
  EXPECT_EQ(cst.type, Type::f32());
  b.ret();
  b.end_function();
}

TEST(Builder, InstructionShapes) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  const Value sum = b.add(b.arg(0), b.i32(1), "sum");
  const Value cmp = b.icmp(CmpPred::SGt, sum, b.i32(0));
  const Value sel = b.select(cmp, sum, b.i32(0));
  b.ret(sel);
  b.end_function();

  const auto& f = m.functions[0];
  EXPECT_EQ(f.insts[sum.index].op, Opcode::Add);
  EXPECT_EQ(f.insts[sum.index].name, "sum");
  EXPECT_EQ(f.insts[cmp.index].type, Type::i1());
  EXPECT_EQ(f.insts[cmp.index].pred, CmpPred::SGt);
  EXPECT_EQ(f.insts[sel.index].operands.size(), 3u);
  EXPECT_EQ(f.value_type(sel), Type::i32());
}

TEST(Builder, PhiIncoming) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(header);
  b.set_block(header);
  const Value iv = b.phi(Type::i32(), "iv");
  b.add_phi_incoming(iv, b.i32(0), entry);
  const Value next = b.add(iv, b.i32(1));
  const Value done = b.icmp(CmpPred::SGe, next, b.i32(10));
  b.cond_br(done, exit, header);
  b.add_phi_incoming(iv, next, header);
  b.set_block(exit);
  b.ret();
  b.end_function();

  const auto& phi = m.functions[0].insts[iv.index];
  ASSERT_EQ(phi.incoming.size(), 2u);
  EXPECT_EQ(phi.incoming[0], entry);
  EXPECT_EQ(phi.incoming[1], header);
}

TEST(Builder, CallResultTypeFollowsCallee) {
  Module m;
  IRBuilder b(m);
  const auto callee =
      b.begin_function("callee", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.arg(0));
  b.end_function();

  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value r = b.call(callee, {b.i32(7)});
  EXPECT_TRUE(r.is_inst());
  EXPECT_EQ(m.functions[1].value_type(r), Type::i32());
  b.ret();
  b.end_function();
}

TEST(Builder, VoidCallReturnsNone) {
  Module m;
  IRBuilder b(m);
  const auto callee = b.begin_function("callee", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.ret();
  b.end_function();

  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  EXPECT_TRUE(b.call(callee, {}).is_none());
  b.ret();
  b.end_function();
}

TEST(Module, FindFunction) {
  Module m;
  IRBuilder b(m);
  b.begin_function("alpha", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.ret();
  b.end_function();
  EXPECT_EQ(m.find_function("alpha"), std::optional<uint32_t>(0));
  EXPECT_FALSE(m.find_function("beta").has_value());
}

TEST(Instruction, Predicates) {
  Instruction inst;
  inst.op = Opcode::Br;
  EXPECT_TRUE(inst.is_terminator());
  inst.op = Opcode::ICmp;
  EXPECT_TRUE(inst.is_cmp());
  inst.op = Opcode::Trunc;
  EXPECT_TRUE(inst.is_cast());
  inst.op = Opcode::Add;
  EXPECT_FALSE(inst.is_terminator());
  EXPECT_FALSE(inst.is_cmp());
  EXPECT_FALSE(inst.is_cast());
}

TEST(Eval, ICmpPredicates) {
  // signed: -1 < 1 at width 8 (0xff is -1).
  EXPECT_TRUE(eval_icmp(CmpPred::SLt, 8, 0xff, 1));
  EXPECT_FALSE(eval_icmp(CmpPred::ULt, 8, 0xff, 1));
  EXPECT_TRUE(eval_icmp(CmpPred::Eq, 32, 5, 5));
  EXPECT_TRUE(eval_icmp(CmpPred::Ne, 32, 5, 6));
  EXPECT_TRUE(eval_icmp(CmpPred::SGe, 32, 5, 5));
  EXPECT_TRUE(eval_icmp(CmpPred::UGt, 32, 6, 5));
}

TEST(Eval, FCmpNaNIsFalse) {
  const uint64_t nan = support::f64_to_bits(std::nan(""));
  const uint64_t one = support::f64_to_bits(1.0);
  for (const auto pred : {CmpPred::Eq, CmpPred::Ne, CmpPred::SLt,
                          CmpPred::SGt, CmpPred::SLe, CmpPred::SGe}) {
    EXPECT_FALSE(eval_fcmp(pred, 64, nan, one));
  }
}

TEST(Eval, FCmpF32) {
  const uint64_t a = support::f32_to_bits(1.5f);
  const uint64_t b = support::f32_to_bits(2.5f);
  EXPECT_TRUE(eval_fcmp(CmpPred::SLt, 32, a, b));
  EXPECT_FALSE(eval_fcmp(CmpPred::SGt, 32, a, b));
}

TEST(Printer, RendersInstructions) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  b.add(b.arg(0), b.i32(1), "inc");
  b.ret();
  b.end_function();
  const auto text = print_module(m);
  EXPECT_NE(text.find("func @f"), std::string::npos);
  EXPECT_NE(text.find("add i32"), std::string::npos);
  EXPECT_NE(text.find("; inc"), std::string::npos);
}

}  // namespace
}  // namespace trident::ir
