#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/stats.h"
#include "stats/ttest.h"

namespace trident::stats {
namespace {

TEST(Stats, Mean) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, Stddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  // Known sample stddev of this classic data set.
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MeanAbsoluteError) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{2, 2, 1};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
}

TEST(Stats, MeanAbsoluteErrorIdenticalAndEmpty) {
  const std::vector<double> a{0.25, 0.5, 0.75};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(
      mean_absolute_error(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Spearman, PerfectMonotone) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  // Any monotone transform has rank correlation exactly 1.
  const std::vector<double> b{0.01, 0.1, 1, 10, 100};
  EXPECT_DOUBLE_EQ(spearman_rank_corr(a, b), 1.0);
  std::vector<double> rev(b.rbegin(), b.rend());
  EXPECT_DOUBLE_EQ(spearman_rank_corr(a, rev), -1.0);
}

TEST(Spearman, KnownValueNoTies) {
  // Classic textbook pairs: rho = 1 - 6*sum(d^2)/(n(n^2-1)).
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 1, 4, 3, 5};
  // d = {1,-1,1,-1,0}, sum d^2 = 4, rho = 1 - 24/120 = 0.8.
  EXPECT_NEAR(spearman_rank_corr(a, b), 0.8, 1e-12);
}

TEST(Spearman, TiesUseAverageRanks) {
  // a has a two-way tie (average rank 1.5 for both 1s); with average
  // ranks rho is still exactly 1 against a series tied the same way.
  const std::vector<double> a{1, 1, 2, 3};
  const std::vector<double> b{5, 5, 6, 7};
  EXPECT_NEAR(spearman_rank_corr(a, b), 1.0, 1e-12);
  // Ties on one side only: hand-computed Pearson over average ranks.
  // ranks(a) = {1.5, 1.5, 3, 4}, ranks(c) = {1, 2, 3, 4} -> rho =
  // 0.9486832980505138 (= 3/sqrt(10)).
  const std::vector<double> c{10, 20, 30, 40};
  EXPECT_NEAR(spearman_rank_corr(a, c), 3.0 / std::sqrt(10.0), 1e-12);
}

TEST(Spearman, DegenerateInputsReturnZero) {
  // The per-instruction report hits these constantly: a model that
  // predicts the same SDC for every instruction carries no ranking
  // information, so the correlation is defined as 0, not NaN.
  const std::vector<double> constant{0.5, 0.5, 0.5};
  const std::vector<double> varied{0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(spearman_rank_corr(constant, varied), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_corr(varied, constant), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_corr(constant, constant), 0.0);
  // Fewer than two pairs.
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(spearman_rank_corr(one, one), 0.0);
  EXPECT_DOUBLE_EQ(
      spearman_rank_corr(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Spearman, BoundedOnNoisyData) {
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back((i * 7919) % 101);
    b.push_back((i * 104729) % 97);
  }
  const double rho = spearman_rank_corr(a, b);
  EXPECT_GE(rho, -1.0);
  EXPECT_LE(rho, 1.0);
}

TEST(Stats, ProportionCi95IsWilsonHalfWidth) {
  // p=0.5, n=100: Wilson half-width 0.09617 (the normal approximation
  // gave 0.0980).
  EXPECT_NEAR(proportion_ci95(0.5, 100), 0.09617, 1e-4);
  EXPECT_DOUBLE_EQ(proportion_ci95(0.5, 0), 0.0);
  // The old normal CI collapsed to zero width at p=0 — the bug this
  // replaces: zero observed SDCs must not read as zero uncertainty.
  EXPECT_GT(proportion_ci95(0.0, 100), 0.0);
  EXPECT_GT(proportion_ci95(1.0, 100), 0.0);
}

TEST(Stats, WilsonKnownValues) {
  // Classic published Wilson 95% intervals.
  // 0 successes of 10: [0, 0.2775].
  const auto z10 = proportion_wilson_ci95(0.0, 10);
  EXPECT_NEAR(z10.lo, 0.0, 1e-9);
  EXPECT_NEAR(z10.hi, 0.2775, 1e-3);
  // 0 successes of 100: [0, 0.0370].
  const auto z100 = proportion_wilson_ci95(0.0, 100);
  EXPECT_NEAR(z100.lo, 0.0, 1e-9);
  EXPECT_NEAR(z100.hi, 0.0370, 1e-3);
  // 5 of 10: [0.2366, 0.7634].
  const auto half = proportion_wilson_ci95(0.5, 10);
  EXPECT_NEAR(half.lo, 0.2366, 1e-3);
  EXPECT_NEAR(half.hi, 0.7634, 1e-3);
  // 1 of 1: [0.2065, 1].
  const auto one = proportion_wilson_ci95(1.0, 1);
  EXPECT_NEAR(one.lo, 0.2065, 1e-3);
  EXPECT_NEAR(one.hi, 1.0, 1e-9);
}

TEST(Stats, WilsonSymmetricAndBounded) {
  for (const uint64_t n : {1u, 7u, 30u, 3000u}) {
    for (const double p : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0}) {
      const auto ci = proportion_wilson_ci95(p, n);
      EXPECT_GE(ci.lo, 0.0);
      EXPECT_LE(ci.hi, 1.0);
      EXPECT_LT(ci.lo, ci.hi);  // never zero-width
      // Mirror symmetry: interval of 1-p is the reflection of p's.
      const auto mirror = proportion_wilson_ci95(1.0 - p, n);
      EXPECT_NEAR(ci.lo, 1.0 - mirror.hi, 1e-12);
      EXPECT_NEAR(ci.hi, 1.0 - mirror.lo, 1e-12);
    }
  }
  // Width shrinks with n.
  EXPECT_LT(proportion_ci95(0.2, 3000), proportion_ci95(0.2, 300));
}

TEST(Stats, LinearFitExact) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitFlat) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{5, 5, 5, 5};
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
}

TEST(IncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform distribution CDF).
  for (const double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1, 1, x), x, 1e-10);
  }
  // I_0.5(a, a) = 0.5 by symmetry.
  for (const double a : {0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10);
  }
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(incomplete_beta(1, 3, 0.2), 1 - std::pow(0.8, 3), 1e-10);
}

TEST(TTest, TwoTailedPKnownValues) {
  // t distribution with 10 df: P(|T| > 2.228) = 0.05 (classic table).
  EXPECT_NEAR(t_two_tailed_p(2.228, 10), 0.05, 2e-3);
  // t = 0 gives p = 1.
  EXPECT_NEAR(t_two_tailed_p(0.0, 5), 1.0, 1e-12);
  // Symmetric in t.
  EXPECT_NEAR(t_two_tailed_p(-2.228, 10), t_two_tailed_p(2.228, 10), 1e-12);
  // Large |t| gives tiny p.
  EXPECT_LT(t_two_tailed_p(50, 10), 1e-8);
}

TEST(TTest, PairedIdenticalSeries) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const auto r = paired_ttest(a, a);
  EXPECT_TRUE(r.degenerate);
  EXPECT_DOUBLE_EQ(r.p, 1.0);
}

TEST(TTest, PairedConstantShift) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b = a;
  for (auto& v : b) v += 2;
  const auto r = paired_ttest(a, b);
  EXPECT_TRUE(r.degenerate);
  EXPECT_DOUBLE_EQ(r.p, 0.0);
}

TEST(TTest, PairedCloseSeriesNotRejected) {
  const std::vector<double> a{0.10, 0.20, 0.30, 0.40, 0.50, 0.25};
  const std::vector<double> b{0.11, 0.19, 0.31, 0.38, 0.52, 0.24};
  const auto r = paired_ttest(a, b);
  EXPECT_GT(r.p, 0.05);  // statistically indistinguishable
}

TEST(TTest, PairedSystematicBiasRejected) {
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) {
    a.push_back(0.1 + 0.01 * i);
    b.push_back(0.3 + 0.011 * i);  // consistent +0.2 shift with jitter
  }
  const auto r = paired_ttest(a, b);
  EXPECT_LT(r.p, 0.05);
}

TEST(TTest, MatchesKnownExample) {
  // Classic paired example: d = {1, 2, 1, 0, 2, 1}, mean 7/6,
  // sd = 0.752773, t = 3.796, df = 5 -> p ~ 0.0127.
  const std::vector<double> before{10, 12, 9, 11, 8, 13};
  const std::vector<double> after{9, 10, 8, 11, 6, 12};
  const auto r = paired_ttest(before, after);
  EXPECT_NEAR(r.t, 3.796, 5e-3);
  EXPECT_NEAR(r.p, 0.0127, 1e-3);
}

}  // namespace
}  // namespace trident::stats
