#include <gtest/gtest.h>

#include "core/fc_model.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::core {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

uint32_t find_condbr(const Module& m, int skip = 0) {
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::CondBr && skip-- == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "condbr not found";
  return ~0u;
}

uint32_t find_store_of(const Module& m, uint32_t start) {
  for (uint32_t i = start; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Store) return i;
  }
  ADD_FAILURE() << "store not found";
  return ~0u;
}

// if (i % 5 < k) store, inside a loop of 100: the data branch is NLT,
// the loop-header branch is LT.
Module make_branchy(int taken_of_five) {
  Module m;
  const auto g = m.add_global({"sink", 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.global(g);
  workloads::counted_loop(b, 0, 100, 1, [&](Value i) {
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(5)),
                           b.i32(taken_of_five));
    workloads::if_then(b, c, [&] { b.store(i, sink); });
  });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();
  return m;
}

TEST(FcModel, ClassifiesLtAndNlt) {
  const auto m = make_branchy(2);
  const auto profile = prof::collect_profile(m);
  const FcModel fc(m, profile);
  const auto loop_br = find_condbr(m, 0);   // loop header: LT
  const auto data_br = find_condbr(m, 1);   // if.then guard: NLT
  EXPECT_TRUE(fc.is_loop_terminating({0, loop_br}));
  EXPECT_FALSE(fc.is_loop_terminating({0, data_br}));
}

TEST(FcModel, NltEquationPePd) {
  // Paper Eq. 1: Pc = Pe / Pd. With the store immediately dominated by
  // the branch, Pe equals the taken probability and Pd = Pe, so Pc = 1
  // (the paper's Fig. 2 note: "if the branch immediately dominates the
  // store ... the probability of the store being corrupted is 1").
  const auto m = make_branchy(2);
  const auto profile = prof::collect_profile(m);
  const FcModel fc(m, profile, /*lucky_stores=*/false);
  const auto data_br = find_condbr(m, 1);
  const auto corrupted = fc.corrupted_stores({0, data_br});
  ASSERT_FALSE(corrupted.empty());
  bool found_sink_store = false;
  for (const auto& cs : corrupted) {
    if (m.functions[0].insts[cs.store.inst].op == ir::Opcode::Store) {
      found_sink_store = true;
      EXPECT_NEAR(cs.prob, 1.0, 1e-9);
    }
  }
  EXPECT_TRUE(found_sink_store);
}

TEST(FcModel, LtStoreCorruptionTracksPerIterationFrequency) {
  // Paper Eq. 2: Pc = Pb * Pe, which equals the store's per-branch
  // execution frequency. The store runs on 2 of 5 iterations -> ~0.4.
  const auto m = make_branchy(2);
  const auto profile = prof::collect_profile(m);
  const FcModel fc(m, profile, /*lucky_stores=*/false);
  const auto loop_br = find_condbr(m, 0);
  const auto corrupted = fc.corrupted_stores({0, loop_br});
  ASSERT_FALSE(corrupted.empty());
  double sink_prob = -1;
  const auto sink_store = find_store_of(m, find_condbr(m, 1));
  for (const auto& cs : corrupted) {
    if (cs.store.inst == sink_store) sink_prob = cs.prob;
  }
  ASSERT_GE(sink_prob, 0.0) << "store not in the LT branch's corruption set";
  EXPECT_NEAR(sink_prob, 0.4, 0.05);
}

TEST(FcModel, CorruptionScalesWithBranchBias) {
  // More biased data branch -> lower Pe for the guarded store, but the
  // NLT equation divides by Pd: with immediate dominance, Pc stays 1.
  // The LT corruption probability, by contrast, scales with frequency.
  for (const int k : {1, 2, 4}) {
    const auto m = make_branchy(k);
    const auto profile = prof::collect_profile(m);
    const FcModel fc(m, profile, /*lucky_stores=*/false);
    const auto loop_br = find_condbr(m, 0);
    const auto sink_store = find_store_of(m, find_condbr(m, 1));
    for (const auto& cs : fc.corrupted_stores({0, loop_br})) {
      if (cs.store.inst == sink_store) {
        EXPECT_NEAR(cs.prob, k / 5.0, 0.06) << "k=" << k;
      }
    }
  }
}

TEST(FcModel, StoresOutsideControlDependenceExcluded) {
  // A store that post-dominates the branch (runs either way) must not be
  // in the corrupted set of the data branch.
  Module m;
  const auto g = m.add_global({"sink", 8, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.global(g);
  workloads::counted_loop(b, 0, 50, 1, [&](Value i) {
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(2)), b.i32(1));
    workloads::if_then(b, c, [&] { b.store(i, sink); });
    // Unconditional store: executes on every iteration.
    b.store(i, b.gep(sink, b.i32(1), 4));
  });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const FcModel fc(m, profile);
  const auto data_br = find_condbr(m, 1);
  const auto guarded_store = find_store_of(m, data_br);
  for (const auto& cs : fc.corrupted_stores({0, data_br})) {
    EXPECT_EQ(cs.store.inst, guarded_store)
        << "unconditional store wrongly marked corrupted";
  }
}

TEST(FcModel, UnexecutedBranchYieldsNothing) {
  Module m;
  const auto g = m.add_global({"sink", 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto dead = b.block("dead");
  const auto dead2 = b.block("dead2");
  const auto out = b.block("out");
  b.set_block(entry);
  b.br(out);
  b.set_block(dead);
  const Value c = b.icmp(CmpPred::Eq, b.i32(0), b.i32(0));
  b.cond_br(c, dead2, out);
  b.set_block(dead2);
  b.store(b.i32(1), b.global(g));
  b.br(out);
  b.set_block(out);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const FcModel fc(m, profile);
  const auto br = find_condbr(m);
  EXPECT_TRUE(fc.corrupted_stores({0, br}).empty());
}

TEST(FcModel, ResultsAreMemoized) {
  const auto m = make_branchy(3);
  const auto profile = prof::collect_profile(m);
  const FcModel fc(m, profile);
  const auto br = find_condbr(m, 1);
  const auto& a = fc.corrupted_stores({0, br});
  const auto& b2 = fc.corrupted_stores({0, br});
  EXPECT_EQ(&a, &b2);  // same cached vector
}

TEST(FcModel, ProbabilitiesAreValidOnAllWorkloads) {
  for (const auto& w : workloads::all_workloads()) {
    const auto m = w.build();
    const auto profile = prof::collect_profile(m);
    const FcModel fc(m, profile);
    for (uint32_t f = 0; f < m.functions.size(); ++f) {
      for (uint32_t i = 0; i < m.functions[f].insts.size(); ++i) {
        if (m.functions[f].insts[i].op != ir::Opcode::CondBr) continue;
        if (profile.exec({f, i}) == 0) continue;
        for (const auto& cs : fc.corrupted_stores({f, i})) {
          EXPECT_GT(cs.prob, 0.0) << w.name;
          EXPECT_LE(cs.prob, 1.0) << w.name;
          EXPECT_EQ(m.functions[cs.store.func].insts[cs.store.inst].op,
                    ir::Opcode::Store)
              << w.name;
        }
      }
    }
  }
}

TEST(FcModel, LuckyStoreDiscountAppliesSilentRate) {
  // A store that always rewrites the value already present (silent rate
  // 1) cannot be corrupted by control divergence: the refinement zeroes
  // its Pc, while the paper-faithful mode keeps it at 1.
  Module m;
  const auto g = m.add_global({"sink", 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.global(g);
  workloads::counted_loop(b, 0, 40, 1, [&](Value i) {
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(2)), b.i32(1));
    // The store always writes 0 over 0: perfectly silent.
    workloads::if_then(b, c, [&] { b.store(b.i32(0), sink); });
  });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  uint32_t store_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Store &&
        profile.exec({0, i}) == 20) {
      store_id = i;
    }
  }
  ASSERT_NE(store_id, ~0u);
  EXPECT_DOUBLE_EQ(profile.silent_store_rate({0, store_id}), 1.0);

  const FcModel lucky(m, profile, /*lucky_stores=*/true);
  const FcModel paper(m, profile, /*lucky_stores=*/false);
  const auto data_br = find_condbr(m, 1);
  bool lucky_has = false, paper_has = false;
  for (const auto& cs : lucky.corrupted_stores({0, data_br})) {
    lucky_has |= cs.store.inst == store_id;
  }
  for (const auto& cs : paper.corrupted_stores({0, data_br})) {
    paper_has |= cs.store.inst == store_id;
  }
  EXPECT_FALSE(lucky_has);  // silent store filtered out
  EXPECT_TRUE(paper_has);   // conservatively kept, as in the paper
}

}  // namespace
}  // namespace trident::core
