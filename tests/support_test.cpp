#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "support/bits.h"
#include "support/rng.h"
#include "support/str.h"

namespace trident::support {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(13);
  std::array<int, 4> counts{};
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.next_below(4)];
  for (const auto c : counts) {
    EXPECT_NEAR(c, kTrials / 4, kTrials / 40);  // within 10%
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBoolEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  EXPECT_FALSE(rng.next_bool(-1.0));
  EXPECT_TRUE(rng.next_bool(2.0));
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(21);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(1);  // same tag, later stream state: still distinct
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1.next_u64() == c2.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(1), 1ull);
  EXPECT_EQ(low_mask(8), 0xffull);
  EXPECT_EQ(low_mask(32), 0xffffffffull);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(Bits, FlipBit) {
  EXPECT_EQ(flip_bit(0, 0, 32), 1ull);
  EXPECT_EQ(flip_bit(1, 0, 32), 0ull);
  EXPECT_EQ(flip_bit(0, 31, 32), 0x80000000ull);
  // Flip masks the result to the declared width.
  EXPECT_EQ(flip_bit(0xffffffffull, 31, 32), 0x7fffffffull);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
  EXPECT_EQ(sign_extend(1, 1), -1);
  EXPECT_EQ(sign_extend(0xdeadbeefcafebabe, 64),
            static_cast<int64_t>(0xdeadbeefcafebabe));
}

TEST(Bits, Truncate) {
  EXPECT_EQ(truncate(0x1ff, 8), 0xffull);
  EXPECT_EQ(truncate(0x100, 8), 0ull);
}

TEST(Bits, PopcountLow) {
  EXPECT_EQ(popcount_low(0xff, 4), 4u);
  EXPECT_EQ(popcount_low(0xff, 8), 8u);
  EXPECT_EQ(popcount_low(0, 32), 0u);
}

TEST(Bits, FloatRoundTrip) {
  for (const double v : {0.0, 1.5, -3.25, 1e300, -1e-300}) {
    EXPECT_EQ(bits_to_f64(f64_to_bits(v)), v);
  }
  for (const float v : {0.0f, 1.5f, -3.25f, 1e30f}) {
    EXPECT_EQ(bits_to_f32(f32_to_bits(v)), v);
  }
}

TEST(Str, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Str, Pct) { EXPECT_EQ(pct(0.1359), "13.59%"); }

TEST(Str, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcdef", 4), "abcd");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace trident::support
