#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/bits.h"
#include "protect/duplication.h"
#include "workloads/workloads.h"

namespace trident::ir {
namespace {

std::optional<Module> parse_or_fail(const std::string& text) {
  ParseError error;
  auto m = parse_module(text, &error);
  EXPECT_TRUE(m.has_value())
      << "line " << error.line << ": " << error.message;
  return m;
}

TEST(Parser, MinimalFunction) {
  const auto m = parse_or_fail(R"(func @main() -> void {
bb0:
  %0 = add i32 i32 1, i32 2
  print %0 fmt=int prec=0
  ret
}
)");
  ASSERT_TRUE(m);
  ASSERT_EQ(m->functions.size(), 1u);
  EXPECT_TRUE(verify(*m).empty()) << verify_to_string(*m);
  EXPECT_EQ(interp::Interpreter(*m).run_main({}).output, "3\n");
}

TEST(Parser, GlobalsAndGep) {
  const auto m = parse_or_fail(R"(@g0 = global "arr" size 16

func @main() -> void {
bb0:
  %0 = gep ptr @g0, i32 2 elem 4
  store i32 7, %0
  %2 = load i32 %0
  print %2 fmt=int prec=0
  ret
}
)");
  ASSERT_TRUE(m);
  ASSERT_EQ(m->globals.size(), 1u);
  EXPECT_EQ(m->globals[0].name, "arr");
  EXPECT_EQ(m->globals[0].size, 16u);
  EXPECT_EQ(interp::Interpreter(*m).run_main({}).output, "7\n");
}

TEST(Parser, ControlFlowAndPhi) {
  const auto m = parse_or_fail(R"(func @main() -> i32 {
bb0:
  br bb1
bb1:
  %1 = phi i32 i32 0, %4 [bb0] [bb2]
  %2 = icmp slt i1 %1, i32 5
  condbr %2, bb2, bb3
bb2:
  %4 = add i32 %1, i32 1
  br bb1
bb3:
  ret %1
}
)");
  ASSERT_TRUE(m);
  EXPECT_TRUE(verify(*m).empty()) << verify_to_string(*m);
  EXPECT_EQ(interp::Interpreter(*m).run(0, {}, {}).ret_raw, 5u);
}

TEST(Parser, CallsResolveByName) {
  const auto m = parse_or_fail(R"(func @twice(i32 %arg0) -> i32 {
bb0:
  %0 = mul i32 %arg0, i32 2
  ret %0
}

func @main() -> i32 {
bb0:
  %0 = call i32 i32 21 @twice
  ret %0
}
)");
  ASSERT_TRUE(m);
  EXPECT_TRUE(verify(*m).empty()) << verify_to_string(*m);
  const auto main_id = m->find_function("main");
  ASSERT_TRUE(main_id.has_value());
  EXPECT_EQ(interp::Interpreter(*m).run(*main_id, {}, {}).ret_raw, 42u);
}

TEST(Parser, FloatHexConstantsExact) {
  const auto m = parse_or_fail(R"(func @main() -> f64 {
bb0:
  %0 = fadd f64 f64 0x1.5555555555555p-2, f64 0x1p-2
  ret %0
}
)");
  ASSERT_TRUE(m);
  const double v = trident::support::bits_to_f64(
      interp::Interpreter(*m).run(0, {}, {}).ret_raw);
  EXPECT_DOUBLE_EQ(v, 1.0 / 3 + 0.25);
}

TEST(Parser, DebugPrintMarker) {
  const auto m = parse_or_fail(R"(func @main() -> void {
bb0:
  print i32 1 fmt=int prec=0
  print i32 2 fmt=int prec=0 (debug)
  ret
}
)");
  ASSERT_TRUE(m);
  const auto res = interp::Interpreter(*m).run_main({});
  EXPECT_EQ(res.output, "1\n");
  EXPECT_EQ(res.debug_output, "2\n");
}

TEST(Parser, ReportsErrors) {
  ParseError error;
  EXPECT_FALSE(parse_module("func @f() -> void {\nbb0:\n  bogus\n}\n",
                            &error));
  EXPECT_EQ(error.line, 3u);
  EXPECT_NE(error.message.find("bogus"), std::string::npos);

  EXPECT_FALSE(parse_module("  %0 = add i32 i32 1, i32 2\n", &error));
  EXPECT_FALSE(
      parse_module("func @f() -> void {\n  ret\n}\n", &error));  // no block
  EXPECT_FALSE(parse_module(
      "func @f() -> void {\nbb0:\n  %0 = call i32 @nosuch\n}\n", &error));
}

TEST(Parser, RejectsDuplicateResultIds) {
  ParseError error;
  EXPECT_FALSE(parse_module(R"(func @f() -> void {
bb0:
  %0 = add i32 i32 1, i32 2
  %0 = add i32 i32 3, i32 4
  ret
}
)",
                            &error));
}

// The big property: print -> parse -> print is a fixed point, and the
// reparsed module behaves identically, for every bundled workload.
class ParserRoundTrip
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(ParserRoundTrip, TextIsAFixedPoint) {
  const auto original = GetParam().build();
  const auto text = print_module(original);
  ParseError error;
  const auto reparsed = parse_module(text, &error);
  ASSERT_TRUE(reparsed.has_value())
      << GetParam().name << " line " << error.line << ": " << error.message;
  EXPECT_TRUE(verify(*reparsed).empty()) << verify_to_string(*reparsed);
  EXPECT_EQ(print_module(*reparsed), text) << GetParam().name;
}

TEST_P(ParserRoundTrip, ReparsedModuleBehavesIdentically) {
  const auto original = GetParam().build();
  const auto reparsed = parse_module(print_module(original));
  ASSERT_TRUE(reparsed.has_value());
  const auto a = interp::Interpreter(original).run_main({});
  const auto b = interp::Interpreter(*reparsed).run_main({});
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.dynamic_insts, b.dynamic_insts);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParserRoundTrip,
                         ::testing::ValuesIn(workloads::all_workloads()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------
// Input-robustness regressions found by the differential fuzzer's
// round-trip oracle (see docs/FUZZING.md).

TEST(Parser, AcceptsCrlfLineEndings) {
  std::string text = R"(func @main() -> void {
bb0:  ; entry
  %0 = add i32 i32 1, i32 2
  print %0 fmt=int prec=0
  ret
}
)";
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const auto m = parse_or_fail(crlf);
  ASSERT_TRUE(m);
  EXPECT_EQ(m->functions[0].blocks[0].name, "entry");
  EXPECT_EQ(interp::Interpreter(*m).run_main({}).output, "3\n");
}

TEST(Parser, AcceptsMissingTrailingNewline) {
  // The final line carries both an instruction and a "  ; name"
  // comment, and the file ends without '\n'.
  const auto m = parse_or_fail(
      "func @main() -> void {\n"
      "bb0:\n"
      "  %0 = add i32 i32 20, i32 22  ; answer\n"
      "  print %0 fmt=int prec=0\n"
      "  ret\n"
      "}");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->functions[0].insts[0].name, "answer");
  EXPECT_EQ(interp::Interpreter(*m).run_main({}).output, "42\n");
}

TEST(Parser, CommentMarkerInsideQuotedGlobalNameIsNotAComment) {
  const auto m = parse_or_fail(R"(@g0 = global "a  ; b" size 8

func @main() -> void {
bb0:
  ret
}
)");
  ASSERT_TRUE(m);
  ASSERT_EQ(m->globals.size(), 1u);
  EXPECT_EQ(m->globals[0].name, "a  ; b");
}

TEST(Parser, DuplicateIdInFinalFunctionReportsHeaderLine) {
  ParseError error;
  const auto m = parse_module(
      "func @main() -> void {\n"   // line 1
      "bb0:\n"
      "  %0 = add i32 i32 1, i32 2\n"
      "  %0 = add i32 i32 3, i32 4\n"
      "  ret\n"
      "}\n",
      &error);
  EXPECT_FALSE(m.has_value());
  // The function that owns the duplicate starts on line 1; the old
  // behavior reported one line past EOF.
  EXPECT_EQ(error.line, 1u);
}

TEST(Parser, ProtectedModulesRoundTripToo) {
  // Output of the duplication pass (dups, detection compares, Detect
  // instructions, bitcasts for float checks) survives text round-trips.
  for (const char* name : {"pathfinder", "hotspot", "blackscholes"}) {
    const auto m = workloads::find_workload(name).build();
    const auto result = protect::duplicate_all(m);
    const auto text = print_module(result.module);
    ParseError error;
    const auto reparsed = parse_module(text, &error);
    ASSERT_TRUE(reparsed.has_value())
        << name << " line " << error.line << ": " << error.message;
    EXPECT_EQ(print_module(*reparsed), text) << name;
    const auto a = interp::Interpreter(result.module).run_main({});
    const auto b = interp::Interpreter(*reparsed).run_main({});
    EXPECT_EQ(a.output, b.output) << name;
    EXPECT_EQ(a.outcome, b.outcome) << name;
  }
}

}  // namespace
}  // namespace trident::ir
