#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "support/rng.h"

namespace trident {
namespace {

using support::Rng;
using support::ThreadPool;

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 10000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  pool.parallel_for(kN, [&](uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1u) << i;
}

TEST(ThreadPool, ParallelForRespectsWorkerCap) {
  ThreadPool pool(4);
  std::atomic<uint32_t> active{0};
  std::atomic<uint32_t> peak{0};
  pool.parallel_for(
      200,
      [&](uint64_t) {
        const uint32_t now = active.fetch_add(1) + 1;
        uint32_t seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        active.fetch_sub(1);
      },
      /*max_workers=*/2, /*grain=*/1);
  EXPECT_LE(peak.load(), 2u);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](uint64_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("bad index");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  pool.parallel_for(8, [&](uint64_t) {
    pool.parallel_for(
        16, [&](uint64_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPool, ManySmallTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<uint64_t> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 500u);
}

TEST(StreamRng, PureFunctionOfSeedAndIndex) {
  auto a = Rng::stream(99, 5);
  auto b = Rng::stream(99, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(StreamRng, AdjacentIndicesDecorrelated) {
  auto a = Rng::stream(99, 5);
  auto b = Rng::stream(99, 6);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

// --- End-to-end determinism: parallel == serial, bit for bit. ---

// A kernel with loops, memory traffic, and output: enough structure that
// trials exercise every outcome class.
ir::Module make_kernel() {
  ir::Module m;
  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const auto buf = b.alloca_(16 * 8);
  ir::Value acc = b.i64(3);
  for (int i = 0; i < 16; ++i) {
    acc = b.add(acc, b.mul(acc, b.i64(5)));
    b.store(acc, b.gep(buf, b.i64(i % 16), 8));
  }
  ir::Value sum = b.i64(0);
  for (int i = 0; i < 16; ++i) {
    sum = b.add(sum, b.load(ir::Type::i64(), b.gep(buf, b.i64(i), 8)));
  }
  b.print_uint(sum);
  b.ret();
  b.end_function();
  return m;
}

TEST(ParallelDeterminism, CampaignBitIdenticalAcrossThreadCounts) {
  const auto m = make_kernel();
  const auto profile = prof::collect_profile(m);
  fi::CampaignOptions serial;
  serial.trials = 200;
  serial.seed = 17;
  serial.threads = 1;
  fi::CampaignOptions parallel = serial;
  parallel.threads = 8;
  const auto a = fi::run_overall_campaign(m, profile, serial);
  const auto b = fi::run_overall_campaign(m, profile, parallel);
  ASSERT_EQ(a.total(), b.total());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.hang, b.hang);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target);
    EXPECT_EQ(a.trials[i].bit, b.trials[i].bit);
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome);
  }
}

TEST(ParallelDeterminism, PerInstructionSweepBitIdentical) {
  const auto m = make_kernel();
  const auto profile = prof::collect_profile(m);
  // Fresh models so each sweep starts with cold memo caches.
  const core::Trident serial_model(m, profile);
  const core::Trident parallel_model(m, profile);
  const auto insts = serial_model.injectable_instructions();
  const auto a = serial_model.predict_all(insts, 1);
  const auto b = parallel_model.predict_all(insts, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal: the sweep must not depend
    // on scheduling.
    EXPECT_EQ(a[i].sdc, b[i].sdc) << "inst " << i;
    EXPECT_EQ(a[i].crash, b[i].crash) << "inst " << i;
  }
}

TEST(ParallelDeterminism, SampledOverallSdcThreadInvariant) {
  const auto m = make_kernel();
  const auto profile = prof::collect_profile(m);
  const core::Trident one(m, profile);
  const core::Trident eight(m, profile);
  EXPECT_EQ(one.overall_sdc(500, 11, 1), eight.overall_sdc(500, 11, 8));
}

}  // namespace
}  // namespace trident
