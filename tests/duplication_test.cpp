#include <gtest/gtest.h>

#include "fi/campaign.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "protect/duplication.h"
#include "protect/selector.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::protect {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

Module make_sum_kernel() {
  Module m;
  const auto g = m.add_global({"arr", 32 * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::lcg_fill_i32(b, arr, 32, 99, 50);
  const Value sum = b.alloca_(4);
  b.store(b.i32(0), sum);
  workloads::counted_loop(b, 0, 32, 1, [&](Value i) {
    const Value v = b.load(Type::i32(), b.gep(arr, i, 4));
    b.store(b.add(b.load(Type::i32(), sum), b.mul(v, v)), sum);
  });
  b.print_int(b.load(Type::i32(), sum));
  b.ret();
  b.end_function();
  return m;
}

TEST(Duplication, IsDuplicablePolicy) {
  ir::Instruction inst;
  inst.op = ir::Opcode::Add;
  inst.type = Type::i32();
  EXPECT_TRUE(is_duplicable(inst));
  inst.op = ir::Opcode::Store;
  inst.type = Type::void_();
  EXPECT_FALSE(is_duplicable(inst));
  inst.op = ir::Opcode::Alloca;
  inst.type = Type::ptr();
  EXPECT_FALSE(is_duplicable(inst));
  inst.op = ir::Opcode::Call;
  inst.type = Type::i32();
  EXPECT_FALSE(is_duplicable(inst));
  inst.op = ir::Opcode::Load;
  EXPECT_TRUE(is_duplicable(inst));
  inst.op = ir::Opcode::Phi;
  EXPECT_TRUE(is_duplicable(inst));
}

TEST(Duplication, OutputVerifiesAndPreservesBehaviour) {
  const auto m = make_sum_kernel();
  const auto original = interp::Interpreter(m).run_main({});
  const auto result = duplicate_all(m);
  ASSERT_TRUE(ir::verify(result.module).empty())
      << ir::verify_to_string(result.module);
  EXPECT_GT(result.added_insts, 0u);
  EXPECT_GT(result.duplicated, 0u);
  const auto protected_run = interp::Interpreter(result.module).run_main({});
  EXPECT_EQ(protected_run.outcome, interp::Outcome::Ok);
  EXPECT_EQ(protected_run.output, original.output);
  EXPECT_GT(protected_run.dynamic_insts, original.dynamic_insts);
}

TEST(Duplication, EmptySelectionIsIdentity) {
  const auto m = make_sum_kernel();
  const auto result = duplicate_instructions(m, {});
  EXPECT_EQ(result.added_insts, 0u);
  EXPECT_EQ(result.duplicated, 0u);
  EXPECT_EQ(result.module.num_insts(), m.num_insts());
  const auto a = interp::Interpreter(m).run_main({});
  const auto b = interp::Interpreter(result.module).run_main({});
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.dynamic_insts, b.dynamic_insts);
}

TEST(Duplication, InstMapTracksOriginals) {
  const auto m = make_sum_kernel();
  std::vector<ir::InstRef> selection;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Mul) {
      selection.push_back({0, i});
    }
  }
  ASSERT_FALSE(selection.empty());
  const auto result = duplicate_instructions(m, selection);
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    const auto it = result.inst_map.find(prof::pack({0, i}));
    ASSERT_NE(it, result.inst_map.end());
    const auto mapped = prof::unpack(it->second);
    EXPECT_EQ(result.module.functions[mapped.func].insts[mapped.inst].op,
              m.functions[0].insts[i].op);
  }
}

TEST(Duplication, ChainGetsSingleComparison) {
  // Protecting a straight chain a->b->c must clone 3 instructions and
  // insert exactly one cmp + one detect (at the chain end).
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.add(b.i32(1), b.i32(2));
  const Value bb = b.mul(a, b.i32(3));
  const Value c = b.sub(bb, b.i32(4));
  b.print_int(c);
  b.ret();
  b.end_function();
  const auto result = duplicate_instructions(
      m, {{0, a.index}, {0, bb.index}, {0, c.index}});
  ASSERT_TRUE(ir::verify(result.module).empty());
  // 3 dups + 1 icmp + 1 detect.
  EXPECT_EQ(result.added_insts, 5u);
  uint32_t detects = 0;
  for (const auto& inst : result.module.functions[0].insts) {
    detects += inst.op == ir::Opcode::Detect;
  }
  EXPECT_EQ(detects, 1u);
}

TEST(Duplication, FloatComparisonGoesThroughBitcast) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.fadd(b.f32(1.0f), b.f32(2.0f));
  b.print_float(x);
  b.ret();
  b.end_function();
  const auto result = duplicate_instructions(m, {{0, x.index}});
  ASSERT_TRUE(ir::verify(result.module).empty())
      << ir::verify_to_string(result.module);
  uint32_t bitcasts = 0;
  for (const auto& inst : result.module.functions[0].insts) {
    bitcasts += inst.op == ir::Opcode::Bitcast;
  }
  EXPECT_EQ(bitcasts, 2u);
  const auto run = interp::Interpreter(result.module).run_main({});
  EXPECT_EQ(run.outcome, interp::Outcome::Ok);
}

TEST(Duplication, PhiDuplicationKeepsGroupContiguous) {
  const auto m = make_sum_kernel();
  std::vector<ir::InstRef> phis;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Phi) phis.push_back({0, i});
  }
  ASSERT_FALSE(phis.empty());
  const auto result = duplicate_instructions(m, phis);
  ASSERT_TRUE(ir::verify(result.module).empty())
      << ir::verify_to_string(result.module);
  const auto run = interp::Interpreter(result.module).run_main({});
  EXPECT_EQ(run.outcome, interp::Outcome::Ok);
}

TEST(Duplication, ProtectedChainDetectsInjectedFault) {
  const auto m = make_sum_kernel();
  const auto result = duplicate_all(m);
  const auto profile = prof::collect_profile(result.module);
  // Campaign on the fully protected program: detections must appear and
  // SDCs must be rarer than on the original.
  fi::CampaignOptions options;
  options.trials = 400;
  const auto protected_campaign =
      fi::run_overall_campaign(result.module, profile, options);
  EXPECT_GT(protected_campaign.detected, 0u);

  const auto orig_profile = prof::collect_profile(m);
  const auto orig_campaign = fi::run_overall_campaign(m, orig_profile, options);
  EXPECT_LT(protected_campaign.sdc_prob(), orig_campaign.sdc_prob());
}

TEST(Selector, BudgetRespected) {
  const auto m = make_sum_kernel();
  const auto profile = prof::collect_profile(m);
  const auto plan = select_for_duplication(
      m, profile, [](ir::InstRef) { return 0.5; }, 1.0 / 3);
  EXPECT_LE(plan.cost, plan.capacity);
  EXPECT_FALSE(plan.selected.empty());
  EXPECT_LT(plan.cost, full_duplication_cost(m, profile));
}

TEST(Selector, FullBudgetSelectsEverything) {
  const auto m = make_sum_kernel();
  const auto profile = prof::collect_profile(m);
  const auto plan = select_for_duplication(
      m, profile, [](ir::InstRef) { return 0.5; }, 1.0);
  EXPECT_EQ(plan.cost, full_duplication_cost(m, profile));
}

TEST(Selector, PrefersHighSdcInstructions) {
  const auto m = make_sum_kernel();
  const auto profile = prof::collect_profile(m);
  // Mark exactly one hot instruction as SDC-prone.
  uint32_t mul_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Mul &&
        profile.exec({0, i}) > 1) {
      mul_id = i;
    }
  }
  ASSERT_NE(mul_id, ~0u);
  const auto plan = select_for_duplication(
      m, profile,
      [&](ir::InstRef ref) { return ref.inst == mul_id ? 1.0 : 0.001; },
      0.5);
  bool picked = false;
  for (const auto& ref : plan.selected) picked |= ref.inst == mul_id;
  EXPECT_TRUE(picked);
}

// The whole protection pipeline must keep every workload's golden
// behaviour intact at full duplication.
class DuplicationOnWorkload
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(DuplicationOnWorkload, FullDuplicationPreservesOutput) {
  const auto m = GetParam().build();
  const auto original = interp::Interpreter(m).run_main({});
  const auto result = duplicate_all(m);
  ASSERT_TRUE(ir::verify(result.module).empty())
      << ir::verify_to_string(result.module);
  const auto protected_run = interp::Interpreter(result.module).run_main({});
  EXPECT_EQ(protected_run.outcome, interp::Outcome::Ok);
  EXPECT_EQ(protected_run.output, original.output);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DuplicationOnWorkload,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::protect
