#include <gtest/gtest.h>

#include "core/fm_model.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::core {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

struct Built {
  Module m;
  prof::Profile profile;
};

struct Models {
  explicit Models(const Built& built)
      : tracer(built.m, built.profile),
        fc(built.m, built.profile),
        fm(built.m, built.profile, tracer, fc) {}
  SequenceTracer tracer;
  FcModel fc;
  FmModel fm;
};

uint32_t find_store(const Module& m, int skip = 0) {
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Store && skip-- == 0) {
      return i;
    }
  }
  ADD_FAILURE() << "store not found";
  return ~0u;
}

Built build(Module m) {
  auto profile = prof::collect_profile(m);
  return {std::move(m), std::move(profile)};
}

TEST(FmModel, StoreToPrintIsCertainPropagation) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(42), p);
  b.print_int(b.load(Type::i32(), p));
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  EXPECT_DOUBLE_EQ(models.fm.store_to_output({0, find_store(built.m)}), 1.0);
}

TEST(FmModel, NeverReloadedStoreIsMasked) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(42), p);  // dead store
  b.print_int(b.i32(7));
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  EXPECT_DOUBLE_EQ(models.fm.store_to_output({0, find_store(built.m)}), 0.0);
}

TEST(FmModel, OverwrittenStorePartiallyMasked) {
  // Two stores to the same cell before one load: only the second one is
  // live; the first store's fault never reaches the load.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(1), p);
  b.store(b.i32(2), p);
  b.print_int(b.load(Type::i32(), p));
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  EXPECT_DOUBLE_EQ(models.fm.store_to_output({0, find_store(built.m, 0)}),
                   0.0);
  EXPECT_DOUBLE_EQ(models.fm.store_to_output({0, find_store(built.m, 1)}),
                   1.0);
}

TEST(FmModel, AccumulatorCycleConvergesToOne) {
  // The quickstart pattern: a memory accumulator updated every
  // iteration and printed once. Fault in any dynamic store of the sum
  // survives the remaining iterations -> probability ~1, which requires
  // the fixed-point treatment of the store->load->store cycle.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sum = b.alloca_(4);
  b.store(b.i32(0), sum);
  workloads::counted_loop(b, 0, 64, 1, [&](Value i) {
    b.store(b.add(b.load(Type::i32(), sum), i), sum);
  });
  b.print_int(b.load(Type::i32(), sum));
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  // The in-loop store of the accumulator.
  uint32_t acc_store = ~0u;
  for (uint32_t i = 0; i < built.m.functions[0].insts.size(); ++i) {
    const auto& inst = built.m.functions[0].insts[i];
    if (inst.op == ir::Opcode::Store &&
        built.profile.exec({0, i}) == 64) {
      acc_store = i;
    }
  }
  ASSERT_NE(acc_store, ~0u);
  EXPECT_GT(models.fm.store_to_output({0, acc_store}), 0.95);
  EXPECT_GT(models.fm.solver_iterations(), 1u);
}

TEST(FmModel, Fig4DivergenceWeighting) {
  // The paper's Fig. 4: stores reloaded by a loop whose print runs on a
  // 60/40 branch -> propagation ~0.6 with the NULL placeholder carrying
  // the masked 0.4.
  Module m;
  const auto g = m.add_global({"arr", 10 * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 10, 1, [&](Value i) {
    b.store(b.add(i, b.i32(100)), b.gep(arr, i, 4));
  });
  workloads::counted_loop(b, 0, 10, 1, [&](Value i) {
    const Value v = b.load(Type::i32(), b.gep(arr, i, 4));
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(10)), b.i32(6));
    workloads::if_then(b, c, [&] { b.print_int(v); });
  });
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  const auto p =
      models.fm.store_to_output({0, find_store(built.m)});
  EXPECT_NEAR(p, 0.6, 0.05);
}

TEST(FmModel, ChainOfCopiesPreservesPropagation) {
  // a -> b -> c -> print: symmetric copy loops; fault in the first
  // array's store must survive the whole chain.
  Module m;
  const auto ga = m.add_global({"a", 16 * 4, {}});
  const auto gb = m.add_global({"b", 16 * 4, {}});
  const auto gc = m.add_global({"c", 16 * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.global(ga);
  const Value bb = b.global(gb);
  const Value c = b.global(gc);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.store(b.mul(i, i), b.gep(a, i, 4));
  });
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.store(b.load(Type::i32(), b.gep(a, i, 4)), b.gep(bb, i, 4));
  });
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.store(b.load(Type::i32(), b.gep(bb, i, 4)), b.gep(c, i, 4));
  });
  const Value chk = b.alloca_(4);
  b.store(b.i32(0), chk);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    const Value v = b.load(Type::i32(), b.gep(c, i, 4));
    b.store(b.add(b.load(Type::i32(), chk), v), chk);
  });
  b.print_int(b.load(Type::i32(), chk));
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  EXPECT_GT(models.fm.store_to_output({0, find_store(built.m)}), 0.9);
}

TEST(FmModel, BranchToOutputCombinesFcAndFm) {
  // Corrupted branch guards a store whose value is printed: the branch's
  // output probability must be ~ Pc * fm(store).
  Module m;
  const auto g = m.add_global({"sink", 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.global(g);
  workloads::counted_loop(b, 0, 40, 1, [&](Value i) {
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(2)), b.i32(1));
    workloads::if_then(b, c, [&] { b.store(i, sink); });
  });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  Models models(built);
  uint32_t data_br = ~0u;
  int seen = 0;
  for (uint32_t i = 0; i < built.m.functions[0].insts.size(); ++i) {
    if (built.m.functions[0].insts[i].op == ir::Opcode::CondBr &&
        seen++ == 1) {
      data_br = i;
    }
  }
  ASSERT_NE(data_br, ~0u);
  const double p = models.fm.branch_to_output({0, data_br});
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(FmModel, ValuesAreProbabilitiesOnAllWorkloads) {
  for (const auto& w : workloads::all_workloads()) {
    const auto built = build(w.build());
    Models models(built);
    for (const auto& edge : built.profile.mem_edges) {
      const double p = models.fm.store_to_output(edge.store);
      EXPECT_GE(p, 0.0) << w.name;
      EXPECT_LE(p, 1.0) << w.name;
    }
  }
}

TEST(FmModel, DisabledFcIgnoresBranchTerminals) {
  Module m;
  const auto g = m.add_global({"sink", 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.global(g);
  // store -> load -> cmp -> branch-guarded print: with fc disabled the
  // only path from the store to the output goes dark.
  b.store(b.i32(5), sink);
  const Value v = b.load(Type::i32(), sink);
  const Value c = b.icmp(CmpPred::SGt, v, b.i32(3));
  workloads::if_then(b, c, [&] { b.print_int(b.i32(1)); });
  b.ret();
  b.end_function();
  const auto built = build(std::move(m));
  SequenceTracer tracer(built.m, built.profile);
  FcModel fc(built.m, built.profile);
  FmModel with_fc(built.m, built.profile, tracer, fc,
                  FmConfig{.enable_fc = true});
  FmModel without_fc(built.m, built.profile, tracer, fc,
                     FmConfig{.enable_fc = false});
  const ir::InstRef store{0, find_store(built.m)};
  EXPECT_GT(with_fc.store_to_output(store), 0.0);
  EXPECT_DOUBLE_EQ(without_fc.store_to_output(store), 0.0);
}

}  // namespace
}  // namespace trident::core
