// Memcpy: the paper's §VII-A "Memory Copy" inaccuracy source. This
// repository implements bulk copies with writer-propagating dependence
// semantics, so the memory sub-model sees THROUGH them — these tests pin
// the semantics, the profiler transparency, and the end-to-end model
// agreement with FI on a memcpy-heavy kernel.
#include <gtest/gtest.h>

#include "core/trident.h"
#include "fi/campaign.h"
#include "interp/interpreter.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "workloads/common.h"

namespace trident {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Writes N values, memcpy's the array twice, then prints a checksum of
// the final copy.
Module make_copy_chain() {
  Module m;
  const auto ga = m.add_global({"a", 16 * 4, {}});
  const auto gb = m.add_global({"b", 16 * 4, {}});
  const auto gc = m.add_global({"c", 16 * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.global(ga);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.store(b.mul(i, b.i32(3)), b.gep(a, i, 4));
  });
  b.memcpy_(b.global(gb), a, 16 * 4);
  b.memcpy_(b.global(gc), b.global(gb), 16 * 4);
  const Value chk = b.alloca_(4);
  b.store(b.i32(0), chk);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    const Value v = b.load(Type::i32(), b.gep(b.global(gc), i, 4));
    b.store(b.add(b.load(Type::i32(), chk), v), chk);
  });
  b.print_int(b.load(Type::i32(), chk));
  b.ret();
  b.end_function();
  return m;
}

TEST(Memcpy, CopiesBytesCorrectly) {
  const auto m = make_copy_chain();
  ASSERT_TRUE(ir::verify(m).empty()) << ir::verify_to_string(m);
  const auto res = interp::Interpreter(m).run_main({});
  ASSERT_EQ(res.outcome, interp::Outcome::Ok) << res.crash_reason;
  // checksum = 3 * sum(0..15) = 360
  EXPECT_EQ(res.output, "360\n");
}

TEST(Memcpy, OutOfBoundsCrashes) {
  Module m;
  const auto ga = m.add_global({"a", 16, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.memcpy_(b.global(ga), b.gep(b.global(ga), b.i32(2), 4), 16);
  b.ret();
  b.end_function();
  const auto res = interp::Interpreter(m).run_main({});
  EXPECT_EQ(res.outcome, interp::Outcome::Crash);
  EXPECT_NE(res.crash_reason.find("memcpy"), std::string::npos);
}

TEST(Memcpy, ProfilerSeesThroughCopies) {
  const auto m = make_copy_chain();
  const auto profile = prof::collect_profile(m);
  // The final loads of `c` must depend on the ORIGINAL stores into `a`
  // (per-byte writers propagated through both copies).
  uint32_t source_store = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Store) {
      source_store = i;
      break;
    }
  }
  ASSERT_NE(source_store, ~0u);
  bool found = false;
  for (const auto& e : profile.mem_edges) {
    if (e.store.inst == source_store && e.count == 16) found = true;
  }
  EXPECT_TRUE(found)
      << "original store -> final load dependence lost across memcpy";
}

TEST(Memcpy, ModelPropagatesThroughCopies) {
  const auto m = make_copy_chain();
  const auto profile = prof::collect_profile(m);
  const core::Trident model(m, profile);
  // Fault in the stored value (the mul): must reach the output through
  // two bulk copies.
  uint32_t mul_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Mul) mul_id = i;
  }
  ASSERT_NE(mul_id, ~0u);
  EXPECT_GT(model.predict({0, mul_id}).sdc, 0.9);
}

TEST(Memcpy, ModelTracksFiOnCopyKernel) {
  const auto m = make_copy_chain();
  const auto profile = prof::collect_profile(m);
  const core::Trident model(m, profile);
  fi::CampaignOptions options;
  options.trials = 500;
  const auto campaign = fi::run_overall_campaign(m, profile, options);
  EXPECT_NEAR(model.overall_sdc_exact(), campaign.sdc_prob(), 0.15);
}

TEST(Memcpy, PrinterParserRoundTrip) {
  const auto m = make_copy_chain();
  const auto text = ir::print_module(m);
  EXPECT_NE(text.find("memcpy"), std::string::npos);
  ir::ParseError error;
  const auto reparsed = ir::parse_module(text, &error);
  ASSERT_TRUE(reparsed.has_value())
      << "line " << error.line << ": " << error.message;
  EXPECT_EQ(ir::print_module(*reparsed), text);
  EXPECT_EQ(interp::Interpreter(*reparsed).run_main({}).output, "360\n");
}

TEST(Memcpy, VerifierRejectsBadShapes) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(8);
  // Zero-byte memcpy is rejected.
  ir::Instruction inst;
  inst.op = ir::Opcode::Memcpy;
  inst.type = Type::void_();
  inst.operands = {p, p};
  inst.imm = 0;
  m.functions[0].append(0, inst);
  b.ret();
  b.end_function();
  EXPECT_FALSE(ir::verify(m).empty());
}

TEST(Memcpy, FaultInPointerMostlyCrashes) {
  const auto m = make_copy_chain();
  const auto profile = prof::collect_profile(m);
  const core::TupleModel tuples(m, profile);
  uint32_t memcpy_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Memcpy) memcpy_id = i;
  }
  ASSERT_NE(memcpy_id, ~0u);
  for (uint32_t op = 0; op < 2; ++op) {
    const auto t = tuples.tuple({0, memcpy_id}, op);
    EXPECT_GT(t.crash, 0.3);
    EXPECT_DOUBLE_EQ(t.propagate, 0.0);
    EXPECT_NEAR(t.propagate + t.mask + t.crash, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace trident
