// Crash-safety of checkpointed FI campaigns: interrupted logs resume to
// bit-identical results at any thread count, and incompatible or corrupt
// logs are rejected loudly instead of silently mixing trials.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fi/campaign.h"
#include "ir/builder.h"
#include "obs/checkpoint.h"
#include "obs/interrupt.h"
#include "profiler/profiler.h"

namespace trident::fi {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

Module make_fragile() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value acc = b.i64(1);
  for (int i = 0; i < 8; ++i) acc = b.add(acc, acc);
  b.print_uint(acc);
  b.ret();
  b.end_function();
  return m;
}

std::string tmp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());  // stale logs from earlier runs are not a resume
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

// Complete ('\n'-terminated) lines of the log.
std::vector<std::string> lines_of(const std::string& content) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (true) {
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string join(const std::vector<std::string>& lines, size_t count) {
  std::string out;
  for (size_t i = 0; i < count; ++i) out += lines[i] + "\n";
  return out;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.hang, b.hang);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.fuel_exhausted, b.fuel_exhausted);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target) << "slot " << i;
    EXPECT_EQ(a.trials[i].bit, b.trials[i].bit) << "slot " << i;
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "slot " << i;
    EXPECT_EQ(a.trials[i].fuel_exhausted, b.trials[i].fuel_exhausted)
        << "slot " << i;
  }
}

CampaignOptions base_options() {
  CampaignOptions options;
  options.trials = 60;
  options.seed = 21;
  options.threads = 1;
  return options;
}

TEST(CheckpointHeader, JsonRoundTrip) {
  obs::CheckpointHeader h;
  h.kind = "instruction";
  h.seed = 987654321;
  h.trials = 4000;
  h.fuel_multiplier = 50;
  h.hang_escalation = 8;
  h.population = 123456789;
  h.num_bits = 4;
  h.entry = 7;
  h.target_func = 2;
  h.target_inst = 31;
  obs::CheckpointHeader parsed;
  ASSERT_TRUE(obs::CheckpointHeader::parse(h.to_json(), &parsed));
  EXPECT_EQ(parsed, h);
}

TEST(Checkpoint, CompletedLogResumesEverythingUnchanged) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const auto options = base_options();
  const auto reference = run_overall_campaign(m, profile, options);

  const std::string path = tmp_path("ckpt_complete.jsonl");
  auto with_log = options;
  with_log.checkpoint_path = path;
  const auto first = run_overall_campaign(m, profile, with_log);
  EXPECT_EQ(first.resumed, 0u);
  expect_identical(first, reference);

  // A second run over the finished log re-runs nothing.
  const auto second = run_overall_campaign(m, profile, with_log);
  EXPECT_EQ(second.resumed, options.trials);
  expect_identical(second, reference);
}

TEST(Checkpoint, TruncatedLogResumesBitIdentical) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const auto options = base_options();
  const auto reference = run_overall_campaign(m, profile, options);

  const std::string full_path = tmp_path("ckpt_full.jsonl");
  auto with_log = options;
  with_log.checkpoint_path = full_path;
  run_overall_campaign(m, profile, with_log);
  const auto lines = lines_of(read_file(full_path));
  ASSERT_EQ(lines.size(), 1 + options.trials);  // header + one per trial

  // Simulate a kill after K completed trials, then resume serially and
  // on 8 threads; the merged result must be bit-identical either way.
  for (const size_t completed : {size_t{0}, size_t{1}, size_t{7}, size_t{59}}) {
    for (const uint32_t threads : {1u, 8u}) {
      const std::string path = tmp_path("ckpt_cut.jsonl");
      write_file(path, join(lines, 1 + completed));
      auto resume = options;
      resume.checkpoint_path = path;
      resume.threads = threads;
      const auto result = run_overall_campaign(m, profile, resume);
      EXPECT_EQ(result.resumed, completed)
          << "cut at " << completed << ", threads " << threads;
      expect_identical(result, reference);
      // The resumed run re-completes the log: every slot is on disk now.
      EXPECT_EQ(lines_of(read_file(path)).size(), 1 + options.trials);
    }
  }
}

TEST(Checkpoint, TornFinalLineIsDroppedAndReRun) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const auto options = base_options();
  const auto reference = run_overall_campaign(m, profile, options);

  const std::string full_path = tmp_path("ckpt_torn_src.jsonl");
  auto with_log = options;
  with_log.checkpoint_path = full_path;
  run_overall_campaign(m, profile, with_log);
  const auto lines = lines_of(read_file(full_path));

  // Crash signatures mid-append: an unterminated record (whether the
  // fragment parses or not) must be dropped and its slot re-run.
  const std::string parseable_tail = lines[1 + 5];
  const std::string garbage_tail = "{\"i\": 9, \"o\"";
  for (const std::string& tail : {parseable_tail, garbage_tail}) {
    const std::string path = tmp_path("ckpt_torn.jsonl");
    write_file(path, join(lines, 1 + 5) + tail);
    auto resume = options;
    resume.checkpoint_path = path;
    const auto result = run_overall_campaign(m, profile, resume);
    EXPECT_EQ(result.resumed, 5u);
    expect_identical(result, reference);
    // The torn bytes were truncated, not appended onto: the finished log
    // parses clean, line for line.
    const auto healed = lines_of(read_file(path));
    EXPECT_EQ(healed.size(), 1 + options.trials);
    const auto again = run_overall_campaign(m, profile, resume);
    EXPECT_EQ(again.resumed, options.trials);
    expect_identical(again, reference);
  }
}

TEST(Checkpoint, StaleSeedIsRejected) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const std::string path = tmp_path("ckpt_stale.jsonl");
  auto options = base_options();
  options.checkpoint_path = path;
  run_overall_campaign(m, profile, options);

  auto stale = options;
  stale.seed = options.seed + 1;
  try {
    run_overall_campaign(m, profile, stale);
    FAIL() << "resume with a different seed must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does not match this campaign"),
              std::string::npos)
        << e.what();
  }

  // Same story for a changed fault model (num_bits) and trial count.
  auto wider = options;
  wider.num_bits = 2;
  EXPECT_THROW(run_overall_campaign(m, profile, wider), std::runtime_error);
  auto longer = options;
  longer.trials = options.trials + 1;
  EXPECT_THROW(run_overall_campaign(m, profile, longer), std::runtime_error);
}

TEST(Checkpoint, CorruptMiddleLineIsRejected) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const std::string path = tmp_path("ckpt_corrupt.jsonl");
  auto options = base_options();
  options.checkpoint_path = path;
  run_overall_campaign(m, profile, options);

  auto lines = lines_of(read_file(path));
  lines[3] = "not json at all";
  write_file(path, join(lines, lines.size()));
  try {
    run_overall_campaign(m, profile, options);
    FAIL() << "corrupt record must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt record"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, OutOfRangeSlotIsRejected) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const std::string path = tmp_path("ckpt_range.jsonl");
  auto options = base_options();
  options.checkpoint_path = path;
  run_overall_campaign(m, profile, options);

  auto lines = lines_of(read_file(path));
  lines.push_back("{\"i\": 60, \"o\": 0, \"f\": 0, \"n\": 0, \"b\": 0, \"x\": 0}");
  write_file(path, join(lines, lines.size()));
  EXPECT_THROW(run_overall_campaign(m, profile, options), std::runtime_error);
}

TEST(Checkpoint, UnknownVersionIsRejected) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const std::string path = tmp_path("ckpt_version.jsonl");
  auto options = base_options();
  options.checkpoint_path = path;
  run_overall_campaign(m, profile, options);

  auto content = read_file(path);
  const std::string tag = "\"version\": 1";
  const size_t pos = content.find(tag);
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, tag.size(), "\"version\": 99");
  write_file(path, content);
  try {
    run_overall_campaign(m, profile, options);
    FAIL() << "unknown checkpoint version must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos)
        << e.what();
  }
}

// Clears the process-wide interrupt flag on scope exit so a failing
// interrupt test cannot poison the tests that run after it.
struct InterruptGuard {
  ~InterruptGuard() { obs::clear_interrupt(); }
};

TEST(Checkpoint, InterruptSkipsRemainingSlotsAndResumeCompletes) {
  const InterruptGuard guard;
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const auto options = base_options();
  const auto reference = run_overall_campaign(m, profile, options);

  // Build a full log, cut it at 13 trials — the state a SIGINT'd run
  // leaves behind.
  const std::string full_path = tmp_path("ckpt_intr_full.jsonl");
  auto with_log = options;
  with_log.checkpoint_path = full_path;
  run_overall_campaign(m, profile, with_log);
  const auto lines = lines_of(read_file(full_path));
  const std::string path = tmp_path("ckpt_intr.jsonl");
  write_file(path, join(lines, 1 + 13));
  auto resume = options;
  resume.checkpoint_path = path;

  // With the interrupt flag raised, the campaign restores the 13 logged
  // trials, runs nothing new, and reports the preemption. The partial
  // tally covers exactly the completed slots.
  obs::request_interrupt();
  const auto partial = run_overall_campaign(m, profile, resume);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.resumed, 13u);
  EXPECT_EQ(partial.total(), 13u);

  // Clearing the flag and re-running completes bit-identically, as if
  // the interruption never happened.
  obs::clear_interrupt();
  const auto completed = run_overall_campaign(m, profile, resume);
  EXPECT_FALSE(completed.interrupted);
  EXPECT_EQ(completed.resumed, 13u);
  expect_identical(completed, reference);
}

TEST(Checkpoint, InterruptBeforeAnyTrialTalliesNothing) {
  const InterruptGuard guard;
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  auto options = base_options();
  options.threads = 4;  // skipping must be safe under parallel slots too
  obs::request_interrupt();
  const auto result = run_overall_campaign(m, profile, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.total(), 0u);
  EXPECT_EQ(result.sdc + result.benign + result.crash + result.hang +
                result.detected,
            0u);
}

TEST(Checkpoint, InstructionCampaignResumes) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  const ir::InstRef target{0, 2};
  ASSERT_GT(profile.exec(target), 0u);

  auto options = base_options();
  const auto reference =
      run_instruction_campaign(m, profile, target, options);

  const std::string path = tmp_path("ckpt_instr.jsonl");
  options.checkpoint_path = path;
  run_instruction_campaign(m, profile, target, options);
  const auto lines = lines_of(read_file(path));
  write_file(path, join(lines, 1 + 10));
  const auto resumed = run_instruction_campaign(m, profile, target, options);
  EXPECT_EQ(resumed.resumed, 10u);
  expect_identical(resumed, reference);

  // A per-instruction log never resumes an overall campaign.
  EXPECT_THROW(run_overall_campaign(m, profile, options),
               std::runtime_error);
}

}  // namespace
}  // namespace trident::fi
