#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/bit_facts.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/def_use.h"
#include "analysis/demanded_bits.h"
#include "analysis/known_bits.h"
#include "analysis/lint.h"
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace trident::analysis {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;

uint32_t find_op(const ir::Function& f, Opcode op, int skip = 0) {
  for (uint32_t i = 0; i < f.insts.size(); ++i) {
    if (f.insts[i].op == op && skip-- == 0) return i;
  }
  ADD_FAILURE() << "opcode not found";
  return ~0u;
}

// ---------------------------------------------------------------------
// KnownBits transfer functions (pure unit tests).

TEST(KnownBits, ConstantsFoldThroughArithmetic) {
  const auto a = KnownBits::constant(0x0F, 32);
  const auto b = KnownBits::constant(0x35, 32);
  EXPECT_EQ(kb_and(a, b).value(), 0x05u);
  EXPECT_EQ(kb_or(a, b).value(), 0x3Fu);
  EXPECT_EQ(kb_xor(a, b).value(), 0x3Au);
  EXPECT_EQ(kb_add(a, b, false).value(), 0x44u);
  EXPECT_EQ(kb_sub(b, a).value(), 0x26u);
  EXPECT_EQ(kb_mul(a, b).value(), 0x0Fu * 0x35u);
  EXPECT_TRUE(kb_add(a, b, false).fully_known());
}

TEST(KnownBits, AndWithConstantClearsHighBits) {
  // x & 0xFF: bits 8..31 provably zero even though x is unknown.
  const auto x = KnownBits::unknown(32);
  const auto mask = KnownBits::constant(0xFF, 32);
  const auto r = kb_and(x, mask);
  EXPECT_EQ(r.zeros, 0xFFFFFF00u);
  EXPECT_EQ(r.ones, 0u);
}

TEST(KnownBits, OrWithConstantSetsBits) {
  const auto x = KnownBits::unknown(32);
  const auto r = kb_or(x, KnownBits::constant(0x80000000u, 32));
  EXPECT_EQ(r.ones, 0x80000000u);
  EXPECT_EQ(r.zeros, 0u);
}

TEST(KnownBits, AddPreservesKnownParity) {
  // even + even = even: bit 0 stays known-zero through the carry logic.
  auto even = KnownBits::unknown(32);
  even.zeros = 1;  // bit 0 known zero
  const auto r = kb_add(even, even, false);
  EXPECT_TRUE(r.zeros & 1u);
  EXPECT_FALSE(r.ones & 1u);
}

TEST(KnownBits, ShiftsByConstantAmounts) {
  const auto x = KnownBits::unknown(32);
  const auto four = KnownBits::constant(4, 32);
  EXPECT_EQ(kb_shl(x, four).zeros & 0xFu, 0xFu);  // low 4 bits zero
  EXPECT_EQ(kb_lshr(x, four).zeros & 0xF0000000u, 0xF0000000u);
  const auto c = KnownBits::constant(0x80, 32);
  EXPECT_EQ(kb_shl(c, four).value(), 0x800u);
  EXPECT_EQ(kb_lshr(c, four).value(), 0x8u);
}

TEST(KnownBits, CastsMapBitRanges) {
  const auto c = KnownBits::constant(0xAB, 32);
  EXPECT_EQ(kb_trunc(c, 8).value(), 0xABu);
  EXPECT_EQ(kb_zext(kb_trunc(c, 8), 32).zeros, 0xFFFFFF00u | 0x54u);
  // sext replicates a known sign bit.
  const auto neg = KnownBits::constant(0x80, 8);
  const auto wide = kb_sext(neg, 32);
  EXPECT_EQ(wide.ones, 0xFFFFFF80u);
}

TEST(KnownBits, JoinKeepsAgreedBitsOnly) {
  const auto a = KnownBits::constant(0x0F, 32);
  const auto b = KnownBits::constant(0x0D, 32);
  const auto j = kb_join(a, b);
  EXPECT_EQ(j.ones, 0x0Du);                 // bits set in both
  EXPECT_EQ(j.zeros & 0x2u, 0u);            // bit 1 disagrees: unknown
  EXPECT_EQ(j.zeros & 0xFFFFFFF0u, 0xFFFFFFF0u);
  // Undefined is the identity.
  EXPECT_EQ(kb_join(KnownBits{}, a), a);
}

// ---------------------------------------------------------------------
// KnownBitsAnalysis over whole functions.

TEST(KnownBitsAnalysis, SeedsFromConstantsAndFolds) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sum = b.add(b.i32(3), b.i32(4));
  const Value masked = b.and_(b.arg(0), b.i32(0xFF));
  b.print_int(sum);
  b.print_int(masked);
  b.ret();
  b.end_function();

  const auto& f = m.functions[0];
  const CFG cfg(f);
  const DefUse du(f);
  const KnownBitsAnalysis kb(f, cfg, du);
  EXPECT_TRUE(kb.of_inst(sum.index).fully_known());
  EXPECT_EQ(kb.of_inst(sum.index).value(), 7u);
  EXPECT_EQ(kb.of_inst(masked.index).zeros, 0xFFFFFF00u);
}

TEST(KnownBitsAnalysis, LoopPhiConvergesToInvariant) {
  // iv = phi [0, iv + 2]: always even. The fixpoint must find the
  // parity invariant and must terminate (knowledge shrinks to it).
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  const auto body = b.block("body");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(header);
  b.set_block(header);
  const Value iv = b.phi(Type::i32(), "iv");
  b.add_phi_incoming(iv, b.i32(0), entry);
  const Value c = b.icmp(CmpPred::SLt, iv, b.i32(10));
  b.cond_br(c, body, exit);
  b.set_block(body);
  const Value next = b.add(iv, b.i32(2));
  b.br(header);
  b.add_phi_incoming(iv, next, body);
  b.set_block(exit);
  b.print_int(iv);
  b.ret();
  b.end_function();

  const auto& f = m.functions[0];
  const CFG cfg(f);
  const DefUse du(f);
  DataflowStats stats;
  const KnownBitsAnalysis kb(f, cfg, du, &stats);
  EXPECT_TRUE(kb.of_inst(iv.index).zeros & 1u) << "iv must be even";
  EXPECT_FALSE(kb.of_inst(iv.index).fully_known());
  EXPECT_GT(stats.fixpoint_iterations, 0u);
  // Termination bound: a value changes at most width+1 times.
  EXPECT_LT(stats.fixpoint_iterations, f.insts.size() * 66u);
}

// ---------------------------------------------------------------------
// Demanded bits.

TEST(DemandedBits, LogicAndCastTransfers) {
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.arg(0), b.i32(1));
  const Value masked = b.and_(x, b.i32(0xFF));
  const Value narrow = b.trunc(x, Type::i8());
  const Value shifted = b.shl(b.i32(1), x);
  (void)masked;
  (void)narrow;
  (void)shifted;
  b.ret();
  b.end_function();

  const auto& f = m.functions[0];
  const CFG cfg(f);
  const DefUse du(f);
  const KnownBitsAnalysis kb(f, cfg, du);
  const uint64_t full = 0xFFFFFFFFu;
  // and x, 0xFF demands only the low byte of x.
  EXPECT_EQ(demanded_operand_bits(f, f.insts[masked.index], 0, full, kb),
            0xFFu);
  // trunc to i8 demands the low byte.
  EXPECT_EQ(demanded_operand_bits(f, f.insts[narrow.index], 0, 0xFFu, kb),
            0xFFu);
  // a shift amount is taken mod 32: only 5 bits demanded.
  EXPECT_EQ(demanded_operand_bits(f, f.insts[shifted.index], 1, full, kb),
            0x1Fu);
  // add: demanded bits reach only downward (carries go up), so full
  // demand on the result demands everything of each addend...
  EXPECT_EQ(demanded_operand_bits(f, f.insts[x.index], 0, full, kb), full);
  // ...but demand of only the low byte never demands high addend bits.
  EXPECT_EQ(demanded_operand_bits(f, f.insts[x.index], 0, 0xFFu, kb), 0xFFu);
}

TEST(DemandedBitsAnalysis, TruncatedChainDemandsLowBitsOnly) {
  // y = a + b; store (trunc y to i8): only y's low byte is demanded, so
  // 24 of its 32 bits are statically masked.
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32(), Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  const Value y = b.add(b.arg(0), b.arg(1));
  const Value t = b.trunc(y, Type::i8());
  const Value p = b.alloca_(1);
  b.store(t, p);
  b.ret();
  b.end_function();

  const auto& f = m.functions[0];
  const CFG cfg(f);
  const DefUse du(f);
  const KnownBitsAnalysis kb(f, cfg, du);
  const DemandedBitsAnalysis db(f, cfg, du, kb);
  EXPECT_EQ(db.of_inst(y.index), 0xFFu);
  EXPECT_EQ(db.of_inst(t.index), 0xFFu);
  EXPECT_EQ(db.of_arg(0), 0xFFu);
  EXPECT_EQ(db.of_arg(1), 0xFFu);
}

TEST(DemandedBitsAnalysis, BranchAndDivisionAreRoots) {
  // Even a dead quotient demands its operands: division can trap.
  Module m;
  IRBuilder b(m);
  b.begin_function("f", {Type::i32()}, Type::void_());
  const auto entry = b.block("entry");
  const auto t = b.block("t");
  b.set_block(entry);
  const Value q = b.udiv(b.i32(100), b.arg(0));
  (void)q;
  const Value c = b.icmp(CmpPred::Eq, b.arg(0), b.i32(0));
  b.cond_br(c, t, t);
  b.set_block(t);
  b.ret();
  b.end_function();

  const auto& f = m.functions[0];
  const CFG cfg(f);
  const DefUse du(f);
  const KnownBitsAnalysis kb(f, cfg, du);
  const DemandedBitsAnalysis db(f, cfg, du, kb);
  EXPECT_EQ(db.of_arg(0), 0xFFFFFFFFu);
  // The comparison feeds a branch: its (1-bit) result is demanded.
  EXPECT_EQ(db.of_inst(c.index) & 1u, 1u);
}

// ---------------------------------------------------------------------
// Module-level facts: determinism and model-facing accessors.

TEST(BitFacts, InfluenceFractionBoundsMaskedValues) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  const Value y = b.add(b.arg(0), b.i32(1));
  const Value t = b.trunc(y, Type::i8());
  const Value z = b.zext(t, Type::i32());
  b.print_int(z);
  b.ret();
  b.end_function();

  const BitFacts facts(m);
  EXPECT_EQ(facts.masked_bits({0, y.index}), 24u);
  EXPECT_NEAR(facts.influence_fraction({0, y.index}), 8.0 / 32, 1e-12);
  // Nothing masked on the print path itself.
  EXPECT_NEAR(facts.influence_fraction({0, t.index}), 1.0, 1e-12);
  EXPECT_GE(facts.stats().masked_bits_total, 24u);
}

TEST(BitFacts, DeterministicAcrossThreadCounts) {
  const auto m = workloads::find_workload("libquantum").build();
  const BitFacts one(m, 1);
  const BitFacts eight(m, 8);
  ASSERT_EQ(one.stats().masked_bits_total, eight.stats().masked_bits_total);
  for (uint32_t fi = 0; fi < m.functions.size(); ++fi) {
    for (uint32_t i = 0; i < m.functions[fi].insts.size(); ++i) {
      const ir::InstRef ref{fi, i};
      EXPECT_EQ(one.known(ref), eight.known(ref));
      EXPECT_EQ(one.demanded(ref), eight.demanded(ref));
    }
  }
}

// ---------------------------------------------------------------------
// Lint driver.

TEST(Lint, CleanFunctionHasNoDiagnostics) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(1), p);
  b.print_int(b.load(Type::i32(), p));
  b.ret();
  b.end_function();
  const auto r = lint_module(m);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.warnings, 0u);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_TRUE(r.functions[0].diagnostics.empty());
}

TEST(Lint, FlagsUnreachableBlock) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto dead = b.block("dead");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(exit);
  b.set_block(dead);
  b.br(exit);
  b.set_block(exit);
  b.ret();
  b.end_function();
  const auto r = lint_module(m);
  ASSERT_EQ(r.functions.size(), 1u);
  bool found = false;
  for (const auto& d : r.functions[0].diagnostics) {
    found |= d.kind == "unreachable-block" && d.block == dead;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(r.functions[0].reachable_blocks, 2u);
}

TEST(Lint, FlagsOverwrittenStore) {
  // Two full stores to a local with no read in between: the first is
  // dead (found by the generic backward block-liveness dataflow).
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(1), p);  // dead
  b.store(b.i32(2), p);
  b.print_int(b.load(Type::i32(), p));
  b.ret();
  b.end_function();
  const auto r = lint_module(m);
  ASSERT_EQ(r.functions.size(), 1u);
  const auto dead_store = find_op(m.functions[0], Opcode::Store, 0);
  bool found = false;
  for (const auto& d : r.functions[0].diagnostics) {
    found |= d.kind == "dead-store" && d.inst == dead_store;
  }
  EXPECT_TRUE(found) << "first store must be flagged";
}

TEST(Lint, FlagsUndefOperandAsError) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x);
  b.ret();
  b.end_function();
  m.functions[0].insts[x.index].operands[1] = ir::Value();  // undef slot
  const auto r = lint_module(m);
  EXPECT_GE(r.errors, 1u);
}

TEST(Lint, JsonIsByteIdenticalAcrossThreadCounts) {
  const auto m = workloads::find_workload("libquantum").build();
  const auto a = lint_to_json(lint_module(m, 1), "libquantum");
  const auto b = lint_to_json(lint_module(m, 8), "libquantum");
  const auto c = lint_to_json(lint_module(m, 8), "libquantum");
  EXPECT_EQ(a.write_pretty(), b.write_pretty());
  EXPECT_EQ(b.write_pretty(), c.write_pretty());
  EXPECT_NE(a.write_pretty().find("\"schema\": \"trident-analyze/1\""),
            std::string::npos);
}

TEST(Lint, AllWorkloadsAreErrorFree) {
  for (const auto& w : workloads::all_workloads()) {
    const auto r = lint_module(w.build());
    EXPECT_EQ(r.errors, 0u) << w.name;
  }
}

}  // namespace
}  // namespace trident::analysis
