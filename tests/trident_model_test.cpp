#include <gtest/gtest.h>

#include "core/trident.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::core {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

TEST(Trident, PredictionsAreProbabilities) {
  const auto m = workloads::find_workload("pathfinder").build();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  for (const auto& ref : model.injectable_instructions()) {
    const auto pred = model.predict(ref);
    EXPECT_GE(pred.sdc, 0.0);
    EXPECT_LE(pred.sdc, 1.0);
    EXPECT_GE(pred.crash, 0.0);
    EXPECT_LE(pred.crash, 1.0);
    EXPECT_LE(pred.sdc + pred.crash, 1.0 + 1e-9);
  }
}

TEST(Trident, UnexecutedInstructionPredictsZero) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto dead = b.block("dead");
  const auto out = b.block("out");
  b.set_block(entry);
  b.br(out);
  b.set_block(dead);
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x);
  b.br(out);
  b.set_block(out);
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  EXPECT_DOUBLE_EQ(model.predict({0, x.index}).sdc, 0.0);
}

TEST(Trident, DirectOutputValueIsCertainSdc) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  EXPECT_DOUBLE_EQ(model.predict({0, x.index}).sdc, 1.0);
}

TEST(Trident, OverallMatchesExactOnUniformProgram) {
  const auto m = workloads::find_workload("nw").build();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  const double exact = model.overall_sdc_exact();
  const double sampled = model.overall_sdc(5000, 7);
  EXPECT_NEAR(sampled, exact, 0.03);
}

TEST(Trident, OverallSamplingDeterministicPerSeed) {
  const auto m = workloads::find_workload("pathfinder").build();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  EXPECT_DOUBLE_EQ(model.overall_sdc(500, 3), model.overall_sdc(500, 3));
}

TEST(Trident, InjectableMatchesProfiledResults) {
  const auto m = workloads::find_workload("sad").build();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  uint64_t total = 0;
  for (const auto& ref : model.injectable_instructions()) {
    const auto& inst = m.functions[ref.func].insts[ref.inst];
    EXPECT_TRUE(inst.has_result());
    EXPECT_GT(profile.exec(ref), 0u);
    total += profile.exec(ref);
  }
  EXPECT_EQ(total, profile.total_results);
}

TEST(Trident, AblationOrderingOnStoreHeavyKernel) {
  // For a kernel whose stores rarely reach the output, the full model
  // must predict no more than fs+fc (which assumes store == SDC).
  const auto m = workloads::find_workload("sad").build();
  const auto profile = prof::collect_profile(m);
  const Trident full(m, profile, ModelConfig::full());
  const Trident fs_fc(m, profile, ModelConfig::fs_fc());
  EXPECT_LE(full.overall_sdc_exact(), fs_fc.overall_sdc_exact() + 1e-9);
}

TEST(Trident, FsOnlyIgnoresControlFlowDivergence) {
  // A value whose only path to the output is through a branch: the fs
  // model must predict 0 for it, the full model more.
  Module m;
  const auto g = m.add_global({"sink", 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.global(g);
  workloads::counted_loop(b, 0, 20, 1, [&](Value i) {
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(4)), b.i32(2));
    workloads::if_then(b, c, [&] { b.store(i, sink); });
  });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const Trident full(m, profile, ModelConfig::full());
  const Trident fs(m, profile, ModelConfig::fs_only());
  // The cmp's only consumer is the branch.
  uint32_t cmp_id = ~0u;
  int seen = 0;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::ICmp && seen++ == 1) {
      cmp_id = i;
    }
  }
  ASSERT_NE(cmp_id, ~0u);
  EXPECT_DOUBLE_EQ(fs.predict({0, cmp_id}).sdc, 0.0);
  EXPECT_GT(full.predict({0, cmp_id}).sdc, 0.0);
}

TEST(Trident, PredictMemoized) {
  const auto m = workloads::find_workload("hotspot").build();
  const auto profile = prof::collect_profile(m);
  const Trident model(m, profile);
  const auto refs = model.injectable_instructions();
  // First full pass may be slow; the second must be nearly free and
  // identical.
  std::vector<double> first, second;
  for (const auto& ref : refs) first.push_back(model.predict(ref).sdc);
  for (const auto& ref : refs) second.push_back(model.predict(ref).sdc);
  EXPECT_EQ(first, second);
}

// Property sweep: on every workload, every model variant yields valid
// probabilities and the configured sub-models change predictions.
class ModelOnWorkload
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(ModelOnWorkload, VariantsProduceValidOverallSdc) {
  const auto m = GetParam().build();
  const auto profile = prof::collect_profile(m);
  for (const auto& config : {ModelConfig::full(), ModelConfig::fs_fc(),
                             ModelConfig::fs_only()}) {
    const Trident model(m, profile, config);
    const double overall = model.overall_sdc_exact();
    EXPECT_GE(overall, 0.0) << GetParam().name;
    EXPECT_LE(overall, 1.0) << GetParam().name;
  }
}

TEST_P(ModelOnWorkload, FullNeverExceedsFsFc) {
  // fm can only discount store terminals (store_weight <= 1), so the
  // full model is bounded by fs+fc.
  const auto m = GetParam().build();
  const auto profile = prof::collect_profile(m);
  const Trident full(m, profile, ModelConfig::full());
  const Trident fs_fc(m, profile, ModelConfig::fs_fc());
  for (const auto& ref : full.injectable_instructions()) {
    EXPECT_LE(full.predict(ref).sdc, fs_fc.predict(ref).sdc + 1e-9)
        << GetParam().name << " inst " << ref.inst;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ModelOnWorkload,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::core
