#include <gtest/gtest.h>

#include "core/tuples.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::core {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Builds a loop running `n` times whose body is produced by `body`,
// profiles it, and returns (module, profile).
template <typename Fn>
std::pair<Module, prof::Profile> profiled(int n, Fn&& body) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  workloads::counted_loop(b, 0, n, 1,
                          [&](Value i) { body(b, i); });
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  auto profile = prof::collect_profile(m);
  return {std::move(m), std::move(profile)};
}

// A profile with zero samples everywhere (but correctly sized): what the
// model sees for code that was never executed under the profiler.
prof::Profile empty_profile(const Module& m) {
  prof::Profile p;
  p.funcs.resize(m.functions.size());
  for (uint32_t f = 0; f < m.functions.size(); ++f) {
    const auto n = m.functions[f].insts.size();
    p.funcs[f].exec.assign(n, 0);
    p.funcs[f].silent.assign(n, 0);
    p.funcs[f].branch.assign(n, {0, 0});
    p.funcs[f].operand_samples.resize(n);
  }
  return p;
}

uint32_t find_op(const Module& m, ir::Opcode op, int skip = 0) {
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == op && skip-- == 0) return i;
  }
  ADD_FAILURE() << "opcode not found";
  return ~0u;
}

void expect_tuple_sums_to_one(const Tuple& t) {
  EXPECT_NEAR(t.propagate + t.mask + t.crash, 1.0, 1e-9);
  EXPECT_GE(t.propagate, 0.0);
  EXPECT_GE(t.mask, 0.0);
  EXPECT_GE(t.crash, 0.0);
}

TEST(Tuples, DefaultOpcodesPropagateFully) {
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.add(b.mul(i, b.i32(3)), b.i32(1));
  });
  const TupleModel tuples(m, profile);
  for (const auto op : {ir::Opcode::Add, ir::Opcode::Mul}) {
    const auto t = tuples.tuple({0, find_op(m, op)}, 0);
    EXPECT_DOUBLE_EQ(t.propagate, 1.0);
    expect_tuple_sums_to_one(t);
  }
}

TEST(Tuples, CmpSignBitExample) {
  // The paper's §IV-C example: `cmp sgt $1, 0` on values whose sign bit
  // alone decides the branch -> propagation 1/32.
  auto [m, profile] = profiled(16, [](IRBuilder& b, Value i) {
    // values 100..1500: strictly positive, far from zero in magnitude...
    const Value v = b.add(b.mul(i, b.i32(100)), b.i32(100));
    b.icmp(CmpPred::SGt, v, b.i32(0));
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::ICmp, 1)}, 0);
  // Only the sign bit always flips the comparison; a couple of high bits
  // may matter for some sampled values, but the probability must be near
  // 1/32 and far from 1.
  EXPECT_GE(t.propagate, 1.0 / 32 - 1e-9);
  EXPECT_LE(t.propagate, 4.0 / 32);
  expect_tuple_sums_to_one(t);
}

TEST(Tuples, CmpEqualityIsBitSensitive) {
  // eq comparison against the exact value: every bit flip changes it.
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.icmp(CmpPred::Eq, i, i);
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::ICmp, 1)}, 0);
  EXPECT_DOUBLE_EQ(t.propagate, 1.0);  // any flip breaks equality
}

TEST(Tuples, AndMasksByOtherOperand) {
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.and_(i, b.i32(0xff));  // only low 8 of 32 bits live
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::And)}, 0);
  EXPECT_NEAR(t.propagate, 8.0 / 32, 1e-9);
  expect_tuple_sums_to_one(t);
}

TEST(Tuples, OrMasksBySetBits) {
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.or_(i, b.i32(0xff));  // low 8 bits forced to 1: masked
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::Or)}, 0);
  EXPECT_NEAR(t.propagate, 24.0 / 32, 1e-9);
}

TEST(Tuples, AndConstantMasksWithEmptyProfile) {
  // `and x, 0xFF` masks the high 24 bits regardless of profiling: the
  // IR constant alone bounds propagation, so an EMPTY profile (no
  // sampled operands at all) must still yield 8/32, not 1.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  b.print_int(b.and_(b.arg(0), b.i32(0xff)));
  b.print_int(b.or_(b.arg(0), b.i32(0xff)));
  b.ret();
  b.end_function();
  const prof::Profile empty = empty_profile(m);
  const TupleModel tuples(m, empty);
  EXPECT_NEAR(tuples.tuple({0, find_op(m, ir::Opcode::And)}, 0).propagate,
              8.0 / 32, 1e-9);
  EXPECT_NEAR(tuples.tuple({0, find_op(m, ir::Opcode::Or)}, 0).propagate,
              24.0 / 32, 1e-9);
}

TEST(Tuples, ConstantBoundCapsOptimisticProfile) {
  // Even with a profile, the static constant bound caps the estimate:
  // the profiled bitwise estimate can never exceed it.
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.and_(i, b.i32(0xf));
  });
  const TupleModel tuples(m, profile);
  EXPECT_LE(tuples.tuple({0, find_op(m, ir::Opcode::And)}, 0).propagate,
            4.0 / 32 + 1e-9);
}

TEST(Tuples, ConstantShiftExactWithEmptyProfile) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  b.print_int(b.lshr(b.arg(0), b.i32(8)));
  b.ret();
  b.end_function();
  const prof::Profile empty = empty_profile(m);
  const TupleModel tuples(m, empty);
  EXPECT_NEAR(tuples.tuple({0, find_op(m, ir::Opcode::LShr)}, 0).propagate,
              24.0 / 32, 1e-9);
}

TEST(Tuples, KnownBitsRefinementSharpensLogicOps) {
  // y = zext(trunc x) has 24 statically known-zero high bits; under the
  // bit_refine facts `and z, y` masks those bits of z even though y is
  // not an IR constant.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {Type::i32(), Type::i32()}, Type::void_());
  b.set_block(b.block("entry"));
  const Value y = b.zext(b.trunc(b.arg(0), Type::i8()), Type::i32());
  b.print_int(b.and_(b.arg(1), y));
  b.ret();
  b.end_function();
  const prof::Profile empty = empty_profile(m);
  const analysis::BitFacts facts(m);
  const TupleModel plain(m, empty);
  const TupleModel refined(m, empty, &facts);
  const uint32_t and_id = find_op(m, ir::Opcode::And);
  EXPECT_DOUBLE_EQ(plain.tuple({0, and_id}, 0).propagate, 1.0);
  EXPECT_NEAR(refined.tuple({0, and_id}, 0).propagate, 8.0 / 32, 1e-9);
}

TEST(Tuples, XorPropagatesFully) {
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.xor_(i, b.i32(0x5a5a5a5a));
  });
  const TupleModel tuples(m, profile);
  EXPECT_DOUBLE_EQ(tuples.tuple({0, find_op(m, ir::Opcode::Xor)}, 0).propagate,
                   1.0);
}

TEST(Tuples, ShiftDropsShiftedOutBits) {
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.lshr(i, b.i32(8));
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::LShr)}, 0);
  EXPECT_NEAR(t.propagate, 24.0 / 32, 1e-9);
  // Faults in the shift amount always matter.
  EXPECT_DOUBLE_EQ(tuples.tuple({0, find_op(m, ir::Opcode::LShr)}, 1).propagate,
                   1.0);
}

TEST(Tuples, TruncKeepsLowBits) {
  auto [m, profile] = profiled(4, [](IRBuilder& b, Value i) {
    b.trunc(b.zext(i, Type::i64()), Type::i16());
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::Trunc)}, 0);
  EXPECT_NEAR(t.propagate, 16.0 / 64, 1e-9);
}

TEST(Tuples, DivisorCrashProbability) {
  // Divisor is always 4 (popcount 1): exactly one bit flip of 32 zeroes
  // it -> crash probability 1/32.
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value i) {
    b.udiv(i, b.add(b.i32(0), b.i32(4)));
  });
  const TupleModel tuples(m, profile);
  const auto t = tuples.tuple({0, find_op(m, ir::Opcode::UDiv)}, 1);
  EXPECT_NEAR(t.crash, 1.0 / 32, 1e-9);
  expect_tuple_sums_to_one(t);
  // Dividend faults propagate fully.
  EXPECT_DOUBLE_EQ(tuples.tuple({0, find_op(m, ir::Opcode::UDiv)}, 0).propagate,
                   1.0);
}

TEST(Tuples, LoadAddressCrash) {
  Module m;
  const auto g = m.add_global({"arr", 64, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.load(Type::i32(), b.gep(arr, i, 4));
  });
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const TupleModel tuples(m, profile);
  const auto load_id = find_op(m, ir::Opcode::Load);
  const auto t = tuples.tuple({0, load_id}, 0);
  EXPECT_GT(t.crash, 0.3);  // most index-bit flips leave the 64B array
  EXPECT_LT(t.crash, 1.0);  // low bits stay inside
  EXPECT_NEAR(t.propagate, 1.0 - t.crash, 1e-9);
}

TEST(Tuples, StoreValuePropagatesAddressMostlyCrashes) {
  Module m;
  const auto g = m.add_global({"arr", 64, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.store(i, b.gep(arr, i, 4));
  });
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const TupleModel tuples(m, profile);
  const auto store_id = find_op(m, ir::Opcode::Store);
  const auto value_t = tuples.tuple({0, store_id}, 0);
  EXPECT_DOUBLE_EQ(value_t.propagate, 1.0);
  const auto addr_t = tuples.tuple({0, store_id}, 1);
  EXPECT_GT(addr_t.crash, 0.3);
  EXPECT_DOUBLE_EQ(addr_t.propagate, 0.0);  // untracked, per the paper
}

TEST(Tuples, SelectMinIdiomMasksLosingArm) {
  // min(i, 1000) where i in [0, 16): the constant arm never wins, and
  // most single-bit increases of i keep it the minimum.
  auto [m, profile] = profiled(16, [](IRBuilder& b, Value i) {
    const Value c = b.icmp(CmpPred::SLt, i, b.i32(1000));
    b.select(c, i, b.i32(1000));
  });
  const TupleModel tuples(m, profile);
  const auto sel = find_op(m, ir::Opcode::Select);
  const auto t1 = tuples.tuple({0, sel}, 1);
  // Flips below bit 10 keep i < 1000 (changed result, kept arm);
  // flips at bit 10+ push i above 1000 and the clean constant wins.
  EXPECT_GT(t1.propagate, 0.2);
  EXPECT_LT(t1.propagate, 0.5);
  // The never-selected arm only propagates if corruption makes it win:
  // impossible by increasing 1000, possible by decreasing below i.
  const auto t2 = tuples.tuple({0, sel}, 2);
  EXPECT_LT(t2.propagate, t1.propagate);
}

TEST(Tuples, FloatAbsorptionInBigAccumulator) {
  // 1.0f added into 1e8f: every mantissa-bit delta of the small operand
  // is below the sum's ulp and vanishes.
  auto [m, profile] = profiled(8, [](IRBuilder& b, Value) {
    b.fadd(b.f32(1e8f), b.fadd(b.f32(1.0f), b.f32(0.0f)));
  });
  const TupleModel tuples(m, profile);
  const auto outer = find_op(m, ir::Opcode::FAdd, 1);
  const auto t = tuples.tuple({0, outer}, 1);
  EXPECT_LT(t.propagate, 0.5);  // small-operand bits mostly absorbed
  const auto t_big = tuples.tuple({0, outer}, 0);
  EXPECT_GT(t_big.propagate, t.propagate);
}

TEST(Tuples, FpFormatPropagationRule) {
  // The paper's computation: f32 printed with %.2g ->
  // ((32-23) + 23*(2/7)) / 32 = 48.66%.
  EXPECT_NEAR(TupleModel::fp_format_propagation(32, 2), 0.4866, 1e-3);
  // Full precision: no masking.
  EXPECT_DOUBLE_EQ(TupleModel::fp_format_propagation(32, 7), 1.0);
  EXPECT_DOUBLE_EQ(TupleModel::fp_format_propagation(64, 16), 1.0);
  // Monotone in precision.
  EXPECT_LT(TupleModel::fp_format_propagation(64, 2),
            TupleModel::fp_format_propagation(64, 8));
}

// Property sweep: tuples are probability triples for every instruction
// and operand position of every workload.
class TupleProperties
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(TupleProperties, AllTuplesAreProbabilityTriples) {
  const auto m = GetParam().build();
  const auto profile = prof::collect_profile(m);
  const TupleModel tuples(m, profile);
  for (uint32_t f = 0; f < m.functions.size(); ++f) {
    for (uint32_t i = 0; i < m.functions[f].insts.size(); ++i) {
      const auto& inst = m.functions[f].insts[i];
      if (profile.exec({f, i}) == 0) continue;
      for (uint32_t op = 0; op < inst.operands.size(); ++op) {
        const auto t = tuples.tuple({f, i}, op);
        EXPECT_GE(t.propagate, 0.0);
        EXPECT_LE(t.propagate, 1.0);
        EXPECT_GE(t.mask, 0.0);
        EXPECT_GE(t.crash, 0.0);
        EXPECT_NEAR(t.propagate + t.mask + t.crash, 1.0, 1e-6)
            << GetParam().name << " f" << f << ":%" << i << " op" << op;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TupleProperties,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::core
