#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/builder.h"
#include "support/bits.h"

namespace trident::interp {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;

TEST(Memory, AllocateLoadStore) {
  Memory mem;
  const auto base = mem.allocate(16);
  EXPECT_TRUE(mem.store(base, 4, 0xdeadbeef));
  uint64_t v = 0;
  EXPECT_TRUE(mem.load(base, 4, v));
  EXPECT_EQ(v, 0xdeadbeefull);
}

TEST(Memory, LittleEndianLayout) {
  Memory mem;
  const auto base = mem.allocate(8);
  mem.store(base, 4, 0x04030201);
  uint64_t b0 = 0;
  mem.load(base, 1, b0);
  EXPECT_EQ(b0, 0x01ull);
  uint64_t b3 = 0;
  mem.load(base + 3, 1, b3);
  EXPECT_EQ(b3, 0x04ull);
}

TEST(Memory, OutOfBoundsRejected) {
  Memory mem;
  const auto base = mem.allocate(8);
  uint64_t v;
  EXPECT_FALSE(mem.load(base + 8, 1, v));
  EXPECT_FALSE(mem.load(base - 1, 1, v));
  EXPECT_FALSE(mem.store(base + 5, 4, 0));  // straddles the end
  EXPECT_TRUE(mem.store(base + 4, 4, 0));
}

TEST(Memory, FreedSegmentInvalid) {
  Memory mem;
  const auto base = mem.allocate(8);
  mem.free(base);
  uint64_t v;
  EXPECT_FALSE(mem.load(base, 1, v));
  EXPECT_EQ(mem.bytes_live(), 0u);
}

TEST(Memory, SegmentsDisjoint) {
  Memory mem;
  const auto a = mem.allocate(64);
  const auto b = mem.allocate(64);
  EXPECT_NE(a, b);
  // The guard gap between segments is not addressable.
  uint64_t v;
  EXPECT_FALSE(mem.load(a + 64, 1, v));
  EXPECT_EQ(mem.segments().size(), 2u);
}

// -- Interpreter semantics ---------------------------------------------------

// Runs a single-function module that prints one value and returns it.
RunResult run_module(const Module& m) {
  Interpreter interp(m);
  return interp.run_main({});
}

TEST(Interp, ArithmeticAndOutput) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value v = b.mul(b.add(b.i32(2), b.i32(3)), b.i32(4));
  b.print_int(v);
  b.ret(v);
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Ok);
  EXPECT_EQ(res.output, "20\n");
  EXPECT_EQ(res.ret_raw, 20u);
}

TEST(Interp, WrapAroundAtWidth) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i8());
  b.set_block(b.block("entry"));
  b.ret(b.add(b.i8(200), b.i8(100)));  // 300 mod 256 = 44
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 44u);
}

TEST(Interp, SignedDivisionAndRemainder) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value q = b.sdiv(b.i32(-7), b.i32(2));
  const Value r = b.srem(b.i32(-7), b.i32(2));
  b.ret(b.add(b.mul(q, b.i32(100)), r));
  b.end_function();
  // -3 * 100 + -1 = -301 (C semantics).
  EXPECT_EQ(support::sign_extend(run_module(m).ret_raw, 32), -301);
}

TEST(Interp, DivisionByZeroCrashes) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(0), p);
  const Value zero = b.load(Type::i32(), p);
  b.sdiv(b.i32(1), zero);
  b.ret();
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Crash);
  EXPECT_NE(res.crash_reason.find("division"), std::string::npos);
}

TEST(Interp, SignedOverflowDivCrashes) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i64());
  b.set_block(b.block("entry"));
  b.ret(b.sdiv(b.i64(INT64_MIN), b.i64(-1)));
  b.end_function();
  EXPECT_EQ(run_module(m).outcome, Outcome::Crash);
}

TEST(Interp, ShiftsAndBitwise) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value shl = b.shl(b.i32(1), b.i32(4));            // 16
  const Value lshr = b.lshr(b.i32(0x80000000), b.i32(4)); // 0x08000000
  const Value ashr = b.ashr(b.i32(0x80000000), b.i32(4)); // 0xF8000000
  const Value x = b.xor_(lshr, ashr);                     // 0xF0000000
  b.ret(b.or_(b.and_(x, b.i32(0xF0000000)), shl));
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 0xF0000010ull);
}

TEST(Interp, CastsRoundTrip) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i64());
  b.set_block(b.block("entry"));
  const Value t = b.trunc(b.i64(0x1ff), Type::i8());       // 0xff
  const Value s = b.sext(t, Type::i32());                  // -1
  const Value z = b.zext(t, Type::i32());                  // 255
  const Value f = b.sitofp(s, Type::f64());                // -1.0
  const Value back = b.fptosi(f, Type::i32());             // -1
  const Value sum = b.add(b.add(z, back), b.i32(0));       // 254
  b.ret(b.zext(sum, Type::i64()));
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 254u);
}

TEST(Interp, FloatArithmeticF32) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value v =
      b.fdiv(b.fmul(b.fadd(b.f32(1.5f), b.f32(2.5f)), b.f32(2.0f)),
             b.f32(4.0f));
  b.print_float(v, 6);
  b.ret();
  b.end_function();
  EXPECT_EQ(run_module(m).output, "2\n");
}

TEST(Interp, FloatPrintPrecision) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.print_float(b.f64(3.14159265), 3);
  b.print_float(b.f64(3.14159265), 8);
  b.ret();
  b.end_function();
  EXPECT_EQ(run_module(m).output, "3.14\n3.1415927\n");
}

TEST(Interp, FpToSiSaturatesInsteadOfUb) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.fptosi(b.f64(1e30), Type::i32()));
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Ok);
  EXPECT_EQ(support::sign_extend(res.ret_raw, 32), 2147483647);
}

TEST(Interp, GlobalsInitialized) {
  Module m;
  ir::Global g;
  g.name = "data";
  g.size = 8;
  g.init = {1, 0, 0, 0, 2, 0, 0, 0};  // two i32: 1, 2
  const auto gid = m.add_global(std::move(g));
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value base = b.global(gid);
  const Value a = b.load(Type::i32(), base);
  const Value c = b.load(Type::i32(), b.gep(base, b.i32(1), 4));
  b.ret(b.add(a, c));
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 3u);
}

TEST(Interp, OutOfBoundsLoadCrashes) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.load(Type::i32(), b.gep(p, b.i32(100), 4));
  b.ret();
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Crash);
  EXPECT_NE(res.crash_reason.find("load"), std::string::npos);
}

TEST(Interp, LoopWithPhi) {
  // sum 0..9 via a register loop (phi-carried accumulator).
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  const auto body = b.block("body");
  const auto exit = b.block("exit");
  b.set_block(entry);
  b.br(header);
  b.set_block(header);
  const Value iv = b.phi(Type::i32(), "iv");
  const Value acc = b.phi(Type::i32(), "acc");
  b.add_phi_incoming(iv, b.i32(0), entry);
  b.add_phi_incoming(acc, b.i32(0), entry);
  b.cond_br(b.icmp(CmpPred::SLt, iv, b.i32(10)), body, exit);
  b.set_block(body);
  const Value acc2 = b.add(acc, iv);
  const Value iv2 = b.add(iv, b.i32(1));
  b.br(header);
  b.add_phi_incoming(iv, iv2, body);
  b.add_phi_incoming(acc, acc2, body);
  b.set_block(exit);
  b.ret(acc);
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 45u);
}

TEST(Interp, CallsAndReturns) {
  Module m;
  IRBuilder b(m);
  const auto sq = b.begin_function("square", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.mul(b.arg(0), b.arg(0)));
  b.end_function();
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value r = b.call(sq, {b.i32(9)});
  b.ret(r);
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 81u);
}

TEST(Interp, RecursionDepthLimitCrashes) {
  Module m;
  IRBuilder b(m);
  const auto f = b.begin_function("rec", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.call(f, {});
  b.ret();
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.call(f, {});
  b.ret();
  b.end_function();
  Interpreter interp(m);
  RunOptions options;
  options.fuel = 10'000'000;
  const auto res = interp.run_main(options);
  EXPECT_EQ(res.outcome, Outcome::Crash);
  EXPECT_NE(res.crash_reason.find("stack"), std::string::npos);
}

TEST(Interp, FuelExhaustionIsHang) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto spin = b.block("spin");
  b.set_block(entry);
  b.br(spin);
  b.set_block(spin);
  b.br(spin);
  b.end_function();
  Interpreter interp(m);
  RunOptions options;
  options.fuel = 1000;
  EXPECT_EQ(interp.run_main(options).outcome, Outcome::Hang);
}

TEST(Interp, SelectPicksByCondition) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value c = b.icmp(CmpPred::SLt, b.i32(3), b.i32(5));
  b.ret(b.select(c, b.i32(10), b.i32(20)));
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 10u);
}

TEST(Interp, DetectHaltsRun) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.detect(b.i1(true));
  b.print_int(b.i32(1));
  b.ret();
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Detected);
  EXPECT_TRUE(res.output.empty());  // halted before the print
}

TEST(Interp, DetectFalseIsNoOp) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.detect(b.i1(false));
  b.print_int(b.i32(1));
  b.ret();
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Ok);
  EXPECT_EQ(res.output, "1\n");
}

TEST(Interp, DebugPrintsSeparated) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.print_int(b.i32(1), /*is_output=*/true);
  b.print_int(b.i32(2), /*is_output=*/false);
  b.ret();
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.output, "1\n");
  EXPECT_EQ(res.debug_output, "2\n");
}

TEST(Interp, DynamicCountsTrackResults) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.add(b.i32(1), b.i32(2));  // result
  b.print_int(b.i32(3));      // no result
  b.ret();                    // no result
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.dynamic_insts, 3u);
  EXPECT_EQ(res.dynamic_results, 1u);
}

TEST(Interp, DeterministicAcrossRuns) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  b.store(b.i32(99), p);
  b.print_int(b.load(Type::i32(), p));
  b.ret();
  b.end_function();
  Interpreter interp(m);
  const auto r1 = interp.run_main({});
  const auto r2 = interp.run_main({});
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.dynamic_insts, r2.dynamic_insts);
}

// Hook that flips one bit: the injector's primitive, tested at the
// interpreter boundary.
class FlipHook final : public ExecHooks {
 public:
  explicit FlipHook(uint64_t target) : target_(target) {}
  void on_result(ir::InstRef, uint64_t index, uint64_t& bits) override {
    if (index == target_) bits ^= 1;
  }

 private:
  uint64_t target_;
};

TEST(Interp, HooksCanPerturbResults) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.add(b.i32(10), b.i32(20)));
  b.end_function();
  Interpreter interp(m);
  FlipHook hook(0);
  RunOptions options;
  options.hooks = &hook;
  EXPECT_EQ(interp.run(0, {}, options).ret_raw, 31u);
}

TEST(Interp, UnsignedRemainderAndDivision) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value q = b.udiv(b.i32(-1), b.i32(16));  // 0xFFFFFFFF / 16
  const Value r = b.urem(b.i32(-1), b.i32(16));
  b.ret(b.add(q, r));
  b.end_function();
  // 0xFFFFFFFF / 16 = 0x0FFFFFFF, remainder 15.
  EXPECT_EQ(run_module(m).ret_raw, 0x0FFFFFFFu + 15);
}

TEST(Interp, FloatWidthConversions) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value wide = b.fpext(b.f32(1.5f));
  const Value narrow = b.fptrunc(b.fadd(wide, b.f64(0.25)));
  b.print_float(narrow, 6);
  b.ret();
  b.end_function();
  EXPECT_EQ(run_module(m).output, "1.75\n");
}

TEST(Interp, CharPrinting) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  b.print_char(b.i8('h'));
  b.print_char(b.i8('i'));
  b.print_char(b.i8('\n'));
  b.ret();
  b.end_function();
  EXPECT_EQ(run_module(m).output, "hi\n");
}

TEST(Interp, BitcastRoundTripsFloatBits) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::i32());
  b.set_block(b.block("entry"));
  const Value as_int = b.bitcast(b.f32(1.0f), Type::i32());
  b.ret(as_int);
  b.end_function();
  EXPECT_EQ(run_module(m).ret_raw, 0x3f800000u);
}

TEST(Interp, AllocaPerExecutionInLoop) {
  // An alloca inside a loop yields a fresh address each iteration and is
  // freed only at function return; no crash, distinct addresses.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  const auto body = b.block("body");
  const auto exit = b.block("exit");
  b.set_block(entry);
  const Value first = b.alloca_(8, "probe");
  b.br(header);
  b.set_block(header);
  const Value iv = b.phi(Type::i32(), "iv");
  b.add_phi_incoming(iv, b.i32(0), entry);
  b.cond_br(b.icmp(CmpPred::SLt, iv, b.i32(4)), body, exit);
  b.set_block(body);
  const Value fresh = b.alloca_(8);
  b.store(iv, fresh);  // each write goes to its own slot
  const Value next = b.add(iv, b.i32(1));
  b.br(header);
  b.add_phi_incoming(iv, next, body);
  b.set_block(exit);
  const Value differs = b.icmp(CmpPred::Ne, first, fresh);
  b.print_int(b.zext(differs, Type::i32()));
  b.ret();
  b.end_function();
  const auto res = run_module(m);
  EXPECT_EQ(res.outcome, Outcome::Ok);
  EXPECT_EQ(res.output, "1\n");
}

TEST(Interp, HangFuelCountsPhis) {
  // A tight phi-loop must still exhaust fuel (phis are charged).
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto spin = b.block("spin");
  b.set_block(entry);
  b.br(spin);
  b.set_block(spin);
  const Value iv = b.phi(Type::i32());
  b.add_phi_incoming(iv, b.i32(0), entry);
  b.add_phi_incoming(iv, iv, spin);
  b.br(spin);
  b.end_function();
  Interpreter interp(m);
  RunOptions options;
  options.fuel = 500;
  EXPECT_EQ(interp.run_main(options).outcome, Outcome::Hang);
}

}  // namespace
}  // namespace trident::interp
