#include <gtest/gtest.h>

#include "core/sequence.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"

namespace trident::core {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

std::pair<ir::InstRef, double> only_store(const Terminals& t) {
  EXPECT_EQ(t.stores.size(), 1u);
  if (t.stores.empty()) return {{}, 0.0};
  return {t.stores[0].ref, t.stores[0].prob};
}

TEST(Sequence, StraightLineToOutput) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  const Value y = b.mul(x, b.i32(3));
  b.print_int(y);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  const auto t = tracer.trace({0, x.index});
  EXPECT_DOUBLE_EQ(t.output_mass(), 1.0);
  EXPECT_DOUBLE_EQ(t.crash, 0.0);
  EXPECT_TRUE(t.stores.empty());
  EXPECT_TRUE(t.branches.empty());
}

TEST(Sequence, EndsAtStore) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);
  const Value x = b.add(b.i32(1), b.i32(2));
  b.store(x, p);
  b.print_int(b.load(Type::i32(), p));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  const auto t = tracer.trace({0, x.index});
  const auto [store, p_store] = only_store(t);
  EXPECT_DOUBLE_EQ(p_store, 1.0);
  EXPECT_EQ(m.functions[0].insts[store.inst].op, ir::Opcode::Store);
  EXPECT_DOUBLE_EQ(t.output_mass(), 0.0);  // fs stops at the store; fm takes over
}

TEST(Sequence, EndsAtBranchThroughCmp) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto t_bb = b.block("t");
  const auto f_bb = b.block("f");
  b.set_block(entry);
  const Value p = b.alloca_(4);
  b.store(b.i32(5), p);
  const Value x = b.load(Type::i32(), p);
  const Value c = b.icmp(CmpPred::SGt, x, b.i32(0));
  b.cond_br(c, t_bb, f_bb);
  b.set_block(t_bb);
  b.print_int(b.i32(1));
  b.ret();
  b.set_block(f_bb);
  b.print_int(b.i32(2));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  // Fault at the cmp result: reaches the branch with probability 1.
  const auto t_cmp = tracer.trace({0, c.index});
  ASSERT_EQ(t_cmp.branches.size(), 1u);
  EXPECT_DOUBLE_EQ(t_cmp.branches[0].second, 1.0);
  // Fault at the load: damped by the cmp's masking tuple.
  const auto t_load = tracer.trace({0, x.index});
  ASSERT_EQ(t_load.branches.size(), 1u);
  EXPECT_LE(t_load.branches[0].second, 1.0);
  EXPECT_GT(t_load.branches[0].second, 0.0);
}

TEST(Sequence, MaskingTupleDampsPropagation) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  const Value masked = b.and_(x, b.i32(0xf));  // 4 of 32 bits survive
  b.print_int(masked);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  EXPECT_NEAR(tracer.trace({0, x.index}).output_mass(), 4.0 / 32, 1e-9);
}

TEST(Sequence, DebugPrintIsNotOutput) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x, /*is_output=*/false);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  EXPECT_DOUBLE_EQ(tracer.trace({0, x.index}).output_mass(), 0.0);
}

TEST(Sequence, FloatOutputFormatMasking) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.fadd(b.f32(1.0f), b.f32(2.0f));
  b.print_float(x, /*precision=*/2);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  const auto t = tracer.trace({0, x.index});
  // The format parameters ride on the output term; resolving the factor
  // with zero attenuation reproduces the paper's 48.66% number.
  ASSERT_EQ(t.outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(t.outputs[0].prob, 1.0);
  EXPECT_EQ(t.outputs[0].print_width, 32u);
  EXPECT_DOUBLE_EQ(t.outputs[0].digits, 2.0);
  EXPECT_NEAR(TupleModel::fp_format_propagation_attenuated(
                  t.outputs[0].print_width, t.outputs[0].digits,
                  surv_to_atten_bits(t.outputs[0].surv)),
              0.4866, 0.01);
}

TEST(Sequence, MultipleUsersCappedAtOne) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x);
  b.print_int(x);  // two output users: still a single fault, capped at 1
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  EXPECT_DOUBLE_EQ(tracer.trace({0, x.index}).output_mass(), 1.0);
}

TEST(Sequence, CrossFunctionThroughCallAndReturn) {
  Module m;
  IRBuilder b(m);
  const auto callee = b.begin_function("sq", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.mul(b.arg(0), b.arg(0)));
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(2), b.i32(3));
  const Value r = b.call(callee, {x});
  b.print_int(r);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  // Fault in x: flows into the callee arg, through the mul, back out.
  EXPECT_DOUBLE_EQ(tracer.trace({1, x.index}).output_mass(), 1.0);
  // Fault inside the callee's mul: returns to the call site's users.
  const auto mul_ref = ir::InstRef{callee, 0};
  EXPECT_DOUBLE_EQ(tracer.trace(mul_ref).output_mass(), 1.0);
}

TEST(Sequence, ReturnSplitsAcrossCallSites) {
  Module m;
  IRBuilder b(m);
  const auto callee = b.begin_function("id", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.add(b.arg(0), b.i32(0)));
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value a = b.call(callee, {b.i32(1)});
  const Value bb = b.call(callee, {b.i32(2)});
  b.print_int(a);        // call site 1 reaches output
  b.and_(bb, b.i32(0));  // call site 2 is fully masked
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  // A fault in the callee's add reaches the output only via site 1,
  // and the two sites are equally frequent.
  EXPECT_NEAR(tracer.trace({callee, 0}).output_mass(), 0.5, 1e-9);
}

TEST(Sequence, ConditionalUserWeightedByExecution) {
  // print runs on ~60% of iterations: a corrupted loop value reaches
  // output with roughly that probability (the paper's Fig. 4 weighting).
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  workloads::counted_loop(b, 0, 10, 1, [&](Value i) {
    const Value v = b.add(b.mul(i, b.i32(7)), b.i32(1));
    const Value c = b.icmp(CmpPred::SLt, b.urem(i, b.i32(10)), b.i32(6));
    workloads::if_then(b, c, [&] { b.print_int(v); });
  });
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  uint32_t mul_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Mul) mul_id = i;
  }
  const auto t = tracer.trace({0, mul_id});
  EXPECT_NEAR(t.output_mass(), 0.6, 0.05);
}

TEST(Sequence, GuardDampingOnInductionVariable) {
  // iv feeds both the exit compare and a store address: the store-side
  // contributions must be damped by the branch-flip probability.
  Module m;
  const auto g = m.add_global({"arr", 256 * 4, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 256, 1, [&](Value i) {
    b.store(i, b.gep(arr, i, 4));
  });
  b.print_int(b.load(Type::i32(), b.gep(arr, b.i32(3), 4)));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  // iv is the phi (first inst of the loop header).
  uint32_t phi_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Phi) phi_id = i;
  }
  ASSERT_NE(phi_id, ~0u);
  const auto t = tracer.trace({0, phi_id});
  ASSERT_FALSE(t.branches.empty());
  const double flip = t.branches[0].second;
  EXPECT_GT(flip, 0.3);  // many iv bits flip `i < 256`
  // Crash mass from the store address must be well below the raw
  // address-crash probability (damped by 1 - flip).
  EXPECT_LT(t.crash, 1.0 - flip + 0.05);
}

TEST(Sequence, CycleThroughPhiDoesNotDeadlockOrPoison) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.alloca_(4);
  workloads::counted_loop(b, 0, 10, 1, [&](Value i) {
    b.store(i, sink);
  });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  uint32_t phi_id = ~0u, add_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    const auto op = m.functions[0].insts[i].op;
    if (op == ir::Opcode::Phi) phi_id = i;
    if (op == ir::Opcode::Add && add_id == ~0u) add_id = i;
  }
  // The iv increment feeds only the phi: tracing it must see the phi's
  // terminals (branch + store), not an empty poisoned memo.
  const auto t_add = tracer.trace({0, add_id});
  const auto t_phi = tracer.trace({0, phi_id});
  EXPECT_FALSE(t_phi.branches.empty());
  EXPECT_FALSE(t_add.branches.empty());
}

TEST(Sequence, TerminalsAccumulateHelper) {
  Terminals a;
  a.add_output({.prob = 0.5, .surv = 0.25, .digits = 6, .print_width = 64});
  a.crash = 0.1;
  a.add_store({0, 1}, 0.3, /*surv=*/1.0);
  a.add_branch({0, 2}, 0.2);
  Terminals b;
  b.accumulate(a, 0.5, /*step_surv=*/0.5);
  EXPECT_DOUBLE_EQ(b.output_mass(), 0.25);
  EXPECT_DOUBLE_EQ(b.outputs[0].surv, 0.125);  // 0.25 * the step's 0.5
  EXPECT_DOUBLE_EQ(b.crash, 0.05);
  EXPECT_DOUBLE_EQ(b.stores[0].prob, 0.15);
  EXPECT_DOUBLE_EQ(b.stores[0].surv, 0.5);
  EXPECT_DOUBLE_EQ(b.branches[0].second, 0.1);
  // Accumulating again merges by instruction; survival keeps the
  // best-surviving path.
  b.accumulate(a, 0.5, 1.0);
  EXPECT_EQ(b.stores.size(), 1u);
  EXPECT_DOUBLE_EQ(b.stores[0].prob, 0.3);
  EXPECT_DOUBLE_EQ(b.stores[0].surv, 1.0);  // max of 0.5 and 1.0
}

TEST(Sequence, DeadValueHasNoTerminals) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));  // never used
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const SequenceTracer tracer(m, profile);
  const auto t = tracer.trace({0, x.index});
  EXPECT_DOUBLE_EQ(t.output_mass(), 0.0);
  EXPECT_TRUE(t.stores.empty());
}

}  // namespace
}  // namespace trident::core
