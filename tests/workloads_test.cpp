#include <gtest/gtest.h>

#include <stdexcept>

#include "interp/interpreter.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {
namespace {

TEST(Registry, HasElevenWorkloadsInPaperOrder) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 11u);
  EXPECT_EQ(all[0].name, "libquantum");
  EXPECT_EQ(all[1].name, "blackscholes");
  EXPECT_EQ(all.back().name, "bfs_rodinia");
}

TEST(Registry, FindByName) {
  EXPECT_EQ(find_workload("hotspot").suite, "Rodinia");
  EXPECT_EQ(find_workload("lulesh").suite, "LLNL");
}

TEST(Registry, LookupReturnsNullForUnknown) {
  EXPECT_NE(lookup_workload("hotspot"), nullptr);
  EXPECT_EQ(lookup_workload("nosuchworkload"), nullptr);
}

TEST(Registry, FindUnknownThrowsListingAllNames) {
  try {
    find_workload("nosuchworkload");
    FAIL() << "find_workload accepted an unknown name";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nosuchworkload"), std::string::npos) << msg;
    // The message must list every registered workload so a CLI typo is
    // self-correcting.
    for (const auto& w : all_workloads()) {
      EXPECT_NE(msg.find(w.name), std::string::npos) << msg;
    }
  }
}

TEST(Helpers, CountedLoopRunsExactTripCount) {
  ir::Module m;
  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const auto counter = b.alloca_(4);
  b.store(b.i32(0), counter);
  counted_loop(b, 3, 17, 2, [&](ir::Value) {
    b.store(b.add(b.load(ir::Type::i32(), counter), b.i32(1)), counter);
  });
  b.print_int(b.load(ir::Type::i32(), counter));
  b.ret();
  b.end_function();
  ASSERT_TRUE(ir::verify(m).empty()) << ir::verify_to_string(m);
  EXPECT_EQ(interp::Interpreter(m).run_main({}).output, "7\n");
}

TEST(Helpers, CountedLoopZeroTrips) {
  ir::Module m;
  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const auto counter = b.alloca_(4);
  b.store(b.i32(0), counter);
  counted_loop(b, 5, 5, 1, [&](ir::Value) {
    b.store(b.i32(1), counter);
  });
  b.print_int(b.load(ir::Type::i32(), counter));
  b.ret();
  b.end_function();
  EXPECT_EQ(interp::Interpreter(m).run_main({}).output, "0\n");
}

TEST(Helpers, IfThenElseBothArms) {
  ir::Module m;
  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const auto out = b.alloca_(4);
  if_then_else(
      b, b.i1(true), [&] { b.store(b.i32(10), out); },
      [&] { b.store(b.i32(20), out); });
  if_then(b, b.i1(false), [&] { b.store(b.i32(30), out); });
  b.print_int(b.load(ir::Type::i32(), out));
  b.ret();
  b.end_function();
  ASSERT_TRUE(ir::verify(m).empty());
  EXPECT_EQ(interp::Interpreter(m).run_main({}).output, "10\n");
}

TEST(Helpers, LcgFillDeterministicAndBounded) {
  ir::Module m;
  const auto g = m.add_global({"arr", 64 * 4, {}});
  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  lcg_fill_i32(b, b.global(g), 64, 123, 100);
  counted_loop(b, 0, 64, 1, [&](ir::Value i) {
    b.print_int(b.load(ir::Type::i32(), b.gep(b.global(g), i, 4)));
  });
  b.ret();
  b.end_function();
  interp::Interpreter interp(m);
  const auto r1 = interp.run_main({});
  const auto r2 = interp.run_main({});
  EXPECT_EQ(r1.output, r2.output);
  // Every value below the modulus.
  std::istringstream is(r1.output);
  int v, count = 0;
  while (is >> v) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    ++count;
  }
  EXPECT_EQ(count, 64);
}

struct GoldenExpectation {
  const char* name;
  uint64_t min_dynamic;
  uint64_t max_dynamic;
  int min_output_lines;
};

class WorkloadGolden : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadGolden, RunsCleanlyAndDeterministically) {
  const auto m = GetParam().build();
  ASSERT_TRUE(ir::verify(m).empty()) << ir::verify_to_string(m);
  interp::Interpreter interp(m);
  const auto r1 = interp.run_main({});
  ASSERT_EQ(r1.outcome, interp::Outcome::Ok) << r1.crash_reason;
  EXPECT_FALSE(r1.output.empty());
  const auto r2 = interp.run_main({});
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.dynamic_insts, r2.dynamic_insts);
  // Interpreter-friendly sizes: big enough to be interesting, small
  // enough for thousands of FI runs.
  EXPECT_GT(r1.dynamic_insts, 5'000u) << GetParam().name;
  EXPECT_LT(r1.dynamic_insts, 1'000'000u) << GetParam().name;
}

TEST_P(WorkloadGolden, ProfileIsConsistentWithRun) {
  const auto m = GetParam().build();
  const auto profile = prof::collect_profile(m);
  const auto run = interp::Interpreter(m).run_main({});
  EXPECT_EQ(profile.total_dynamic, run.dynamic_insts);
  EXPECT_EQ(profile.total_results, run.dynamic_results);
  EXPECT_EQ(profile.golden_output, run.output);
  // Execution counts must sum to the dynamic total.
  uint64_t sum = 0;
  for (const auto& fp : profile.funcs) {
    for (const auto e : fp.exec) sum += e;
  }
  EXPECT_EQ(sum, profile.total_dynamic);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadGolden,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& info) { return info.param.name; });

// Pin a few golden outputs so accidental workload changes are caught
// (FI classification depends on byte-exact golden output).
TEST(Golden, PathfinderOutputShape) {
  const auto m = find_workload("pathfinder").build();
  const auto run = interp::Interpreter(m).run_main({});
  // Two integer lines: min cost and its column.
  int lines = 0;
  for (const char c : run.output) lines += c == '\n';
  EXPECT_EQ(lines, 2);
}

TEST(Golden, LuleshHasDebugAndRealOutput) {
  const auto m = find_workload("lulesh").build();
  const auto run = interp::Interpreter(m).run_main({});
  EXPECT_FALSE(run.output.empty());
  EXPECT_FALSE(run.debug_output.empty());  // periodic diagnostics
}

TEST(Golden, HotspotPrintsLowPrecisionCorners) {
  const auto m = find_workload("hotspot").build();
  const auto run = interp::Interpreter(m).run_main({});
  int lines = 0;
  for (const char c : run.output) lines += c == '\n';
  EXPECT_EQ(lines, 6);  // 5 cells + average
}

TEST(Golden, BfsVariantsVisitEveryNode) {
  for (const char* name : {"bfs_parboil", "bfs_rodinia"}) {
    const auto m = find_workload(name).build();
    const auto run = interp::Interpreter(m).run_main({});
    // Last printed line is the visited count; both graphs are connected
    // via the ring edge, so every node must be reached.
    const auto pos = run.output.find_last_of(
        '\n', run.output.size() - 2);
    const int visited = std::stoi(run.output.substr(pos + 1));
    EXPECT_EQ(visited, name == std::string("bfs_parboil") ? 192 : 160)
        << name;
  }
}

TEST(InputVariants, SeedsChangeDataNotStructure) {
  const auto a = build_pathfinder_seeded(1000);
  const auto b = build_pathfinder_seeded(31337);
  // Same program structure...
  EXPECT_EQ(a.num_insts(), b.num_insts());
  EXPECT_EQ(a.functions[0].blocks.size(), b.functions[0].blocks.size());
  // ...different input data, hence different golden outputs.
  const auto ra = interp::Interpreter(a).run_main({});
  const auto rb = interp::Interpreter(b).run_main({});
  EXPECT_EQ(ra.outcome, interp::Outcome::Ok);
  EXPECT_EQ(rb.outcome, interp::Outcome::Ok);
  EXPECT_NE(ra.output, rb.output);
}

TEST(InputVariants, DefaultSeedMatchesRegistry) {
  const auto reg = find_workload("hotspot").build();
  const auto seeded = build_hotspot_seeded(64641);
  EXPECT_EQ(interp::Interpreter(reg).run_main({}).output,
            interp::Interpreter(seeded).run_main({}).output);
}

TEST(InputVariants, AllSeededFamiliesRunCleanly) {
  for (const auto seed : {7, 99, 123456}) {
    for (const auto& build :
         {build_pathfinder_seeded, build_hotspot_seeded,
          build_bfs_parboil_seeded}) {
      const auto m = build(seed);
      ASSERT_TRUE(ir::verify(m).empty());
      EXPECT_EQ(interp::Interpreter(m).run_main({}).outcome,
                interp::Outcome::Ok);
    }
  }
}

}  // namespace
}  // namespace trident::workloads
